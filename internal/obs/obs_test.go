package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"github.com/elisa-go/elisa/internal/simtime"
)

func span(guest, object string, fn uint64, total simtime.Duration) Span {
	var sp Span
	sp.Guest, sp.Object, sp.Fn, sp.Batch = guest, object, fn, 1
	sp.Phases[PhaseGateIn] = total
	return sp
}

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	r.Record(span("g", "o", 1, 10))
	r.RecordLatency("g", "o", 1, 10)
	r.Reset()
	if r.Spans() != nil || r.SpansSeen() != 0 || r.SpansSampled() != 0 || r.Keys() != nil {
		t.Fatal("nil recorder not inert")
	}
	if h := r.Histogram(Key{"g", "o", 1}); h.Count() != 0 {
		t.Fatal("nil recorder histogram not empty")
	}
	if h := r.AttachmentHistogram("g", "o"); h.Count() != 0 {
		t.Fatal("nil recorder attachment histogram not empty")
	}
}

func TestRecorderSampling(t *testing.T) {
	r := NewRecorder(Config{SpanRing: 64, SampleEvery: 4})
	for i := 0; i < 10; i++ {
		r.Record(span("g", "o", 1, simtime.Duration(100+i)))
	}
	if r.SpansSeen() != 10 {
		t.Fatalf("seen = %d", r.SpansSeen())
	}
	// Seqs 0, 4, 8 pass the 1-in-4 sampler.
	sps := r.Spans()
	if len(sps) != 3 || r.SpansSampled() != 3 {
		t.Fatalf("sampled %d spans (counter %d)", len(sps), r.SpansSampled())
	}
	for i, want := range []uint64{0, 4, 8} {
		if sps[i].Seq != want {
			t.Fatalf("sps[%d].Seq = %d, want %d", i, sps[i].Seq, want)
		}
	}
	// The histogram sees every call, sampled or not.
	if h := r.Histogram(Key{"g", "o", 1}); h.Count() != 10 {
		t.Fatalf("histogram count = %d", h.Count())
	}
}

func TestRecorderRingWrap(t *testing.T) {
	r := NewRecorder(Config{SpanRing: 4, SampleEvery: 1})
	for i := 0; i < 11; i++ {
		r.Record(span("g", "o", 1, 5))
	}
	sps := r.Spans()
	if len(sps) != 4 {
		t.Fatalf("retained %d", len(sps))
	}
	for i, sp := range sps {
		if sp.Seq != uint64(7+i) {
			t.Fatalf("sps[%d].Seq = %d, want oldest-first 7..10", i, sp.Seq)
		}
	}
}

func TestRecorderAggregation(t *testing.T) {
	r := NewRecorder(Config{SampleEvery: 1})
	r.Record(span("a", "kv", 1, 100))
	r.Record(span("a", "kv", 2, 200))
	r.Record(span("a", "ring", 1, 300))
	r.Record(span("b", "kv", 1, 400))
	keys := r.Keys()
	if len(keys) != 4 {
		t.Fatalf("keys = %v", keys)
	}
	if keys[0] != (Key{"a", "kv", 1}) || keys[3] != (Key{"b", "kv", 1}) {
		t.Fatalf("key order: %v", keys)
	}
	if h := r.AttachmentHistogram("a", "kv"); h.Count() != 2 || h.Sum() != 300 {
		t.Fatalf("attachment hist: %s", h)
	}
	if h := r.GuestHistogram("a"); h.Count() != 3 || h.Sum() != 600 {
		t.Fatalf("guest hist: %s", h)
	}
	r.Reset()
	if r.SpansSeen() != 0 || len(r.Keys()) != 0 || len(r.Spans()) != 0 {
		t.Fatal("reset left state behind")
	}
}

func TestRecorderConcurrentUse(t *testing.T) {
	r := NewRecorder(Config{SpanRing: 128, SampleEvery: 2})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := string(rune('a' + g))
			for i := 0; i < 500; i++ {
				r.Record(span(name, "o", uint64(i%3), simtime.Duration(i)))
				if i%50 == 0 {
					_ = r.Spans()
					_ = r.AttachmentHistogram(name, "o")
				}
			}
		}(g)
	}
	wg.Wait()
	if r.SpansSeen() != 2000 {
		t.Fatalf("seen = %d", r.SpansSeen())
	}
	if r.SpansSampled() != 1000 {
		t.Fatalf("sampled = %d", r.SpansSampled())
	}
}

func TestSpanStringAndTotal(t *testing.T) {
	var sp Span
	sp.Guest, sp.Object, sp.Fn, sp.Batch, sp.Err = "g", "o", 7, 3, true
	sp.Phases[PhaseGateIn] = 56
	sp.Phases[PhaseSubSwitch] = 42
	sp.Phases[PhaseFunc] = 10
	sp.Phases[PhaseExchange] = 8
	sp.Phases[PhaseReturn] = 98
	if sp.Total() != 214 {
		t.Fatalf("total = %v", sp.Total())
	}
	s := sp.String()
	for _, want := range []string{"gate-in=56ns", "sub-switch=42ns", "func=10ns", "exchange=8ns", "return=98ns", "batch=3", "ERR"} {
		if !strings.Contains(s, want) {
			t.Fatalf("span string missing %q: %s", want, s)
		}
	}
}

func TestRegistryGatherAndRender(t *testing.T) {
	reg := NewRegistry()
	reg.Register(func() []Metric {
		return []Metric{{
			Name: "zz_gauge", Type: TypeGauge,
			Samples: []Sample{{Value: 2.5}},
		}}
	})
	reg.Register(func() []Metric {
		return []Metric{{
			Name: "aa_total", Help: "a counter", Type: TypeCounter,
			Samples: []Sample{
				{Labels: map[string]string{"vm": "b"}, Value: 2},
				{Labels: map[string]string{"vm": "a"}, Value: 1},
			},
		}}
	})
	ms := reg.Gather()
	if len(ms) != 2 || ms[0].Name != "aa_total" || ms[1].Name != "zz_gauge" {
		t.Fatalf("gather order: %+v", ms)
	}
	if ms[0].Samples[0].Labels["vm"] != "a" {
		t.Fatalf("sample order: %+v", ms[0].Samples)
	}
	text := reg.Prometheus()
	for _, want := range []string{
		"# HELP aa_total a counter",
		"# TYPE aa_total counter",
		`aa_total{vm="a"} 1`,
		`aa_total{vm="b"} 2`,
		"# TYPE zz_gauge gauge",
		"zz_gauge 2.5",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, text)
		}
	}
	if reg.Prometheus() != text {
		t.Fatal("render not deterministic")
	}
	raw, err := reg.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back []Metric
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("JSON round trip: %v", err)
	}
	if len(back) != 2 || back[0].Name != "aa_total" {
		t.Fatalf("JSON content: %s", raw)
	}
}

func TestCollectRecorderSummaries(t *testing.T) {
	if CollectRecorder(nil) != nil {
		t.Fatal("nil recorder should yield nil collector")
	}
	r := NewRecorder(Config{SampleEvery: 1})
	for i := 0; i < 100; i++ {
		r.Record(span("tenant-0", "kv", 1, simtime.Duration(100+i)))
	}
	reg := NewRegistry()
	reg.Register(CollectRecorder(r))
	text := reg.Prometheus()
	for _, want := range []string{
		"# TYPE elisa_call_latency_ns summary",
		`elisa_call_latency_ns{fn="1",guest="tenant-0",object="kv",quantile="0.99"}`,
		`elisa_call_latency_ns_count{fn="1",guest="tenant-0",object="kv"} 100`,
		`elisa_spans_total{disposition="seen"} 100`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q:\n%s", want, text)
		}
	}
}
