package obs

import (
	"sort"
	"sync"

	"github.com/elisa-go/elisa/internal/simtime"
	"github.com/elisa-go/elisa/internal/stats"
)

// Defaults for Config zero values.
const (
	// DefaultSpanRing is the default span-ring capacity.
	DefaultSpanRing = 4096
	// DefaultSampleEvery is the default span sampling rate: one span in
	// every N offered is retained in the ring. Histograms see every call
	// regardless — sampling bounds only the detailed per-call records.
	DefaultSampleEvery = 16
)

// Config configures a Recorder.
type Config struct {
	// SpanRing is the span-ring capacity (<=0 picks DefaultSpanRing).
	SpanRing int
	// SampleEvery keeps 1 of every N spans in the ring (<=0 picks
	// DefaultSampleEvery; 1 records every span).
	SampleEvery int
	// CausalEvents is the causal-event ring capacity (<=0 picks
	// DefaultCausalEvents). Unlike spans, causal events are never
	// sampled — the chain would be useless with holes — only evicted
	// oldest-first once the ring is full.
	CausalEvents int
}

// Key identifies one latency series: a (guest, object, function) triple.
type Key struct {
	Guest  string
	Object string
	Fn     uint64
}

// Recorder is the fast-path flight recorder. A nil *Recorder is valid and
// discards everything, so the call path never needs nil checks beyond one
// pointer comparison — that single comparison is the whole cost of
// observability when it is switched off.
//
// Recorder is safe for concurrent use: the simulated machine is
// single-threaded per vCPU, but harnesses (and elisa-top) may drive
// several guests or poll snapshots from other goroutines.
type Recorder struct {
	mu          sync.Mutex
	sampleEvery uint64
	ring        []Span // fixed capacity, allocation-free after warm-up
	start       int    // ring head when full
	count       int    // retained spans
	seen        uint64 // spans offered (every call)
	sampled     uint64 // spans placed in the ring
	hists       map[Key]*stats.Histogram
	ringBatches map[RingKey]*stats.Histogram
	causal      *CausalLog
}

// RingKey identifies one ring-batch series: the (guest, object)
// attachment whose call ring was drained.
type RingKey struct {
	Guest  string
	Object string
}

// NewRecorder creates a recorder with the given config.
func NewRecorder(cfg Config) *Recorder {
	if cfg.SpanRing <= 0 {
		cfg.SpanRing = DefaultSpanRing
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = DefaultSampleEvery
	}
	return &Recorder{
		sampleEvery: uint64(cfg.SampleEvery),
		ring:        make([]Span, 0, cfg.SpanRing),
		hists:       make(map[Key]*stats.Histogram),
		ringBatches: make(map[RingKey]*stats.Histogram),
		causal:      NewCausalLog(cfg.CausalEvents),
	}
}

// Causal returns the recorder's causal-event log. A nil recorder
// returns a nil log, which itself discards everything, so call sites
// can chain r.Causal().Event(...) unconditionally.
func (r *Recorder) Causal() *CausalLog {
	if r == nil {
		return nil
	}
	return r.causal
}

// RecordRingBatch adds one batch-size observation for an attachment's
// call ring: how many descriptors one drain (gate flush or manager
// poller pass) serviced together. Like all recording it charges nothing.
func (r *Recorder) RecordRingBatch(guest, object string, size int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	k := RingKey{guest, object}
	h, ok := r.ringBatches[k]
	if !ok {
		h = stats.NewHistogram()
		r.ringBatches[k] = h
	}
	h.Record(int64(size))
}

// RingBatchKeys returns the ring-batch series keys seen so far, sorted by
// guest then object.
func (r *Recorder) RingBatchKeys() []RingKey {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RingKey, 0, len(r.ringBatches))
	for k := range r.ringBatches {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Guest != out[j].Guest {
			return out[i].Guest < out[j].Guest
		}
		return out[i].Object < out[j].Object
	})
	return out
}

// RingBatchHistogram returns an independent snapshot of one ring-batch
// series, or an empty histogram if the key has never been recorded.
func (r *Recorder) RingBatchHistogram(k RingKey) *stats.Histogram {
	if r == nil {
		return stats.NewHistogram()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.ringBatches[k]; ok {
		return h.Clone()
	}
	return stats.NewHistogram()
}

// Record offers one completed span. A single-call span's total latency is
// recorded in its (guest, object, fn) histogram unconditionally; batch
// spans skip the histogram because their constituent requests were already
// recorded one-by-one via RecordLatency. The span itself enters the ring
// only if the sampling counter selects it. Record assigns the span's Seq.
func (r *Recorder) Record(sp Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	sp.Seq = r.seen
	r.seen++
	if sp.Batch <= 1 {
		r.histLocked(Key{sp.Guest, sp.Object, sp.Fn}).RecordDuration(sp.Total())
	}
	if sp.Seq%r.sampleEvery != 0 {
		return
	}
	r.sampled++
	if r.count < cap(r.ring) {
		r.ring = append(r.ring, sp)
		r.count++
		return
	}
	r.ring[r.start] = sp
	r.start = (r.start + 1) % r.count
}

// RecordLatency adds one latency observation to a series without offering
// a span — used for the per-request timings inside a CallMulti batch,
// whose gate crossing is amortised and recorded as a single span.
func (r *Recorder) RecordLatency(guest, object string, fn uint64, d simtime.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.histLocked(Key{guest, object, fn}).RecordDuration(d)
}

func (r *Recorder) histLocked(k Key) *stats.Histogram {
	h, ok := r.hists[k]
	if !ok {
		h = stats.NewHistogram()
		r.hists[k] = h
	}
	return h
}

// Spans returns the retained spans, oldest first.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, r.count)
	out = append(out, r.ring[r.start:r.count]...)
	out = append(out, r.ring[:r.start]...)
	return out
}

// SpansSeen reports how many spans were offered to the recorder.
func (r *Recorder) SpansSeen() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seen
}

// SpansSampled reports how many spans passed sampling into the ring
// (including any since evicted by ring wrap).
func (r *Recorder) SpansSampled() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sampled
}

// Keys returns the latency-series keys seen so far, sorted by guest,
// object, then function id.
func (r *Recorder) Keys() []Key {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Key, 0, len(r.hists))
	for k := range r.hists {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Guest != out[j].Guest {
			return out[i].Guest < out[j].Guest
		}
		if out[i].Object != out[j].Object {
			return out[i].Object < out[j].Object
		}
		return out[i].Fn < out[j].Fn
	})
	return out
}

// Histogram returns an independent snapshot of one latency series, or an
// empty histogram if the key has never been recorded.
func (r *Recorder) Histogram(k Key) *stats.Histogram {
	if r == nil {
		return stats.NewHistogram()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[k]; ok {
		return h.Clone()
	}
	return stats.NewHistogram()
}

// AttachmentHistogram merges every function's series for one (guest,
// object) attachment into a single snapshot — the per-tenant p50/p99 an
// operator watches.
func (r *Recorder) AttachmentHistogram(guest, object string) *stats.Histogram {
	return r.merged(func(k Key) bool { return k.Guest == guest && k.Object == object })
}

// GuestHistogram merges every series of one guest across all objects.
func (r *Recorder) GuestHistogram(guest string) *stats.Histogram {
	return r.merged(func(k Key) bool { return k.Guest == guest })
}

func (r *Recorder) merged(match func(Key) bool) *stats.Histogram {
	out := stats.NewHistogram()
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, h := range r.hists {
		if match(k) {
			out.Merge(h)
		}
	}
	return out
}

// Reset discards all spans and histograms (counters included), as an
// operator would between measurement windows.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ring = r.ring[:0]
	r.start, r.count = 0, 0
	r.seen, r.sampled = 0, 0
	clear(r.hists)
	clear(r.ringBatches)
	r.causal.Reset()
}
