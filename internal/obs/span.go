// Package obs is the flight recorder of the exit-less fast path: call
// spans decomposed into the phases the paper's Table 2 measures,
// per-(guest, object, function) latency histograms, and a metrics
// registry with Prometheus-style and JSON exporters.
//
// The slow path already has an observability substrate (package trace
// records exits, kills, and negotiations); obs covers the part trace
// cannot see — the exit-less calls that, by design, never reach the
// hypervisor. Recording is purely host-side bookkeeping: it reads the
// calling vCPU's simulated clock but never charges it, so enabling
// observability does not perturb a single simulated-time measurement.
package obs

import (
	"fmt"
	"strings"

	"github.com/elisa-go/elisa/internal/simtime"
)

// Phase indexes one component of an ELISA call span. The decomposition
// mirrors the cost structure behind the paper's Table 2 round trip
// (4*VMFunc + 2*GateCode + 6 fetches = 196 ns) plus the work done inside
// the sub context.
type Phase int

// Span phases, in call order.
const (
	// PhaseGateIn is the inbound entry: gate-page fetch in the default
	// context, register spill, and the VMFUNC into the gate context.
	PhaseGateIn Phase = iota
	// PhaseSubSwitch is the gate's work: gate-page fetch, grant-table
	// check, and the VMFUNC into the sub context.
	PhaseSubSwitch
	// PhaseFunc is manager-function execution in the sub context
	// (manager-code fetch and the function body, minus exchange copies).
	PhaseFunc
	// PhaseExchange is time the function spent moving bytes through the
	// exchange buffer (the copy component of PUT/GET/TX/RX patterns).
	PhaseExchange
	// PhaseReturn is the outbound chain: sub -> gate -> default, with the
	// register restore and the epilogue fetch.
	PhaseReturn
	// NumPhases is the number of span phases.
	NumPhases
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseGateIn:
		return "gate-in"
	case PhaseSubSwitch:
		return "sub-switch"
	case PhaseFunc:
		return "func"
	case PhaseExchange:
		return "exchange"
	case PhaseReturn:
		return "return"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// Span is one recorded fast-path invocation: a Handle.Call, or one whole
// Handle.CallMulti batch.
type Span struct {
	// Seq numbers every span offered to the recorder (sampled or not), so
	// gaps in a dumped ring reveal both sampling and ring eviction.
	Seq uint64
	// Start is the calling vCPU's simulated time at call entry.
	Start simtime.Time
	// Guest and Object identify the attachment.
	Guest  string
	Object string
	// Fn is the manager function id (the first request's id for a batch).
	Fn uint64
	// Batch is the number of requests under the gate crossing (1 for Call).
	Batch int
	// Err reports whether any function invocation returned an error, or
	// the gate refused the slot.
	Err bool
	// Phases holds the simulated duration of each phase.
	Phases [NumPhases]simtime.Duration
}

// Total is the span's end-to-end simulated duration.
func (s Span) Total() simtime.Duration {
	var t simtime.Duration
	for _, d := range s.Phases {
		t += d
	}
	return t
}

// String renders the span on one line, phase-by-phase.
func (s Span) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%06d %12s] %-12s %-12s fn=%-4d", s.Seq, simtime.Duration(s.Start), s.Guest, s.Object, s.Fn)
	if s.Batch > 1 {
		fmt.Fprintf(&b, " batch=%-3d", s.Batch)
	}
	fmt.Fprintf(&b, " total=%s", s.Total())
	for p := Phase(0); p < NumPhases; p++ {
		fmt.Fprintf(&b, " %s=%s", p, s.Phases[p])
	}
	if s.Err {
		b.WriteString(" ERR")
	}
	return b.String()
}
