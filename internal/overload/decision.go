package overload

import (
	"fmt"
	"sort"
	"strings"

	"github.com/elisa-go/elisa/internal/simtime"
)

// Verdict classifies one overload-plane decision about one arrival or
// completion: the hook names mirror the fleet's refusal ladder (cheapest
// gate first) plus the drain-side CompBusy backstop.
type Verdict uint8

// The verdicts, in refusal-ladder order. VerdictAdmit is the accept;
// everything after it is a flavour of refusal.
const (
	// VerdictAdmit: the arrival passed every gate and queued.
	VerdictAdmit Verdict = iota
	// VerdictThrottle: the tenant's admission token bucket refused it.
	VerdictThrottle
	// VerdictQuarantine: refused because the tenant's circuit breaker is
	// open (the tenant is evicted from the schedule until cooldown).
	VerdictQuarantine
	// VerdictShed: the fleet-wide load shedder refused it by class.
	VerdictShed
	// VerdictDrop: the tenant's bounded queue was full.
	VerdictDrop
	// VerdictBusy: the op reached a ring but was bounced CompBusy with
	// retries exhausted (drain-side backpressure, charged at harvest).
	VerdictBusy
	// VerdictRebalance: not a refusal — the cluster rebalancer migrated a
	// tenant between shards. Recorded so placement decisions share the
	// same auditable trace as admission decisions; runs without a
	// rebalancer armed never record it, keeping their traces unchanged.
	VerdictRebalance
	numVerdicts
)

// String names the verdict for traces and tables.
func (v Verdict) String() string {
	switch v {
	case VerdictAdmit:
		return "admit"
	case VerdictThrottle:
		return "throttle"
	case VerdictQuarantine:
		return "quarantine"
	case VerdictShed:
		return "shed"
	case VerdictDrop:
		return "drop"
	case VerdictBusy:
		return "busy"
	case VerdictRebalance:
		return "rebalance"
	default:
		return fmt.Sprintf("verdict(%d)", uint8(v))
	}
}

// Verdicts returns every verdict in ladder order (admit first).
func Verdicts() []Verdict {
	out := make([]Verdict, numVerdicts)
	for i := range out {
		out[i] = Verdict(i)
	}
	return out
}

// Decision is one recorded verdict.
type Decision struct {
	At      simtime.Time
	Tenant  string
	Verdict Verdict
	Class   int
	Note    string
}

// DecisionKey aggregates decisions per (tenant, verdict) — the unit the
// counterfactual analysis ranks.
type DecisionKey struct {
	Tenant  string
	Verdict Verdict
}

// DecisionTrace is the overload plane's decision log: every
// admit/throttle/quarantine/shed/drop/busy verdict the fleet issues,
// with per-(tenant,verdict) counts that keep accumulating after the
// bounded event log fills. Everything is simulated-time ordered and
// seeded upstream, so two same-seed runs record identical traces —
// which is what makes the rendered log a golden-file artefact.
type DecisionTrace struct {
	cap     int
	events  []Decision
	skipped uint64 // decisions past the event cap (still counted below)
	counts  map[DecisionKey]uint64
}

// DefaultDecisionCap bounds the retained event log (counts are exact
// regardless); at a few hundred kilobytes it holds every decision of the
// committed regression scenarios with room to spare.
const DefaultDecisionCap = 1 << 16

// NewDecisionTrace returns an empty trace retaining at most cap events
// (cap <= 0 selects DefaultDecisionCap).
func NewDecisionTrace(cap int) *DecisionTrace {
	if cap <= 0 {
		cap = DefaultDecisionCap
	}
	return &DecisionTrace{cap: cap, counts: make(map[DecisionKey]uint64)}
}

// Record logs one verdict. A nil trace records nothing, so callers hook
// it unconditionally.
func (d *DecisionTrace) Record(at simtime.Time, tenant string, v Verdict, class int, note string) {
	if d == nil {
		return
	}
	d.counts[DecisionKey{Tenant: tenant, Verdict: v}]++
	if len(d.events) >= d.cap {
		d.skipped++
		return
	}
	d.events = append(d.events, Decision{At: at, Tenant: tenant, Verdict: v, Class: class, Note: note})
}

// Events returns the retained decision log in record order.
func (d *DecisionTrace) Events() []Decision {
	if d == nil {
		return nil
	}
	return append([]Decision(nil), d.events...)
}

// Skipped reports how many decisions fell past the event cap (their
// counts are still exact).
func (d *DecisionTrace) Skipped() uint64 {
	if d == nil {
		return 0
	}
	return d.skipped
}

// Count returns the exact tally for one (tenant, verdict) pair.
func (d *DecisionTrace) Count(tenant string, v Verdict) uint64 {
	if d == nil {
		return 0
	}
	return d.counts[DecisionKey{Tenant: tenant, Verdict: v}]
}

// Counts returns the per-(tenant,verdict) tallies sorted by tenant then
// verdict — a deterministic rendering order.
func (d *DecisionTrace) Counts() []struct {
	Key   DecisionKey
	Count uint64
} {
	if d == nil {
		return nil
	}
	out := make([]struct {
		Key   DecisionKey
		Count uint64
	}, 0, len(d.counts))
	for k, n := range d.counts {
		out = append(out, struct {
			Key   DecisionKey
			Count uint64
		}{k, n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Tenant != out[j].Key.Tenant {
			return out[i].Key.Tenant < out[j].Key.Tenant
		}
		return out[i].Key.Verdict < out[j].Key.Verdict
	})
	return out
}

// Summary renders the per-(tenant,verdict) tallies as one line per pair
// — the compact decision digest reports and goldens embed.
func (d *DecisionTrace) Summary() string {
	var b strings.Builder
	for _, c := range d.Counts() {
		fmt.Fprintf(&b, "%s %s %d\n", c.Key.Tenant, c.Key.Verdict, c.Count)
	}
	if s := d.Skipped(); s > 0 {
		fmt.Fprintf(&b, "(event log capped: %d decisions counted but not retained)\n", s)
	}
	return b.String()
}
