// Package overload provides the deterministic overload-control
// primitives the fleet scheduler and the ring datapath share: token-
// bucket admission control, a watermark load shedder with priority
// classes, a fault circuit breaker, and jittered exponential backoff.
//
// Everything here is driven by simulated time and seeded RNG — no wall
// clocks, no global randomness — so two runs with the same seed make
// identical admission, shedding, and quarantine decisions, and the
// fleet's byte-identical-report property survives saturation.
package overload

import (
	"math/rand"

	"github.com/elisa-go/elisa/internal/simtime"
)

// TokenBucket is per-tenant admission control: tokens refill at a fixed
// rate of virtual time and each admitted operation spends one. It is the
// first gate on the arrival path — work refused here costs the machine
// nothing, unlike work shed after it has queued.
type TokenBucket struct {
	rate   float64 // tokens per simulated second
	burst  float64
	tokens float64
	last   simtime.Time
}

// NewTokenBucket builds a bucket admitting ratePerSec operations per
// simulated second with the given burst capacity (minimum 1). The bucket
// starts full.
func NewTokenBucket(ratePerSec float64, burst int) *TokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{rate: ratePerSec, burst: float64(burst), tokens: float64(burst)}
}

// Allow refills the bucket by the virtual time elapsed since the last
// call and takes one token, reporting whether the operation is admitted.
// A nil bucket admits everything.
func (b *TokenBucket) Allow(now simtime.Time) bool {
	if b == nil {
		return true
	}
	if el := now.Sub(b.last); el > 0 {
		b.tokens += el.Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// ShedConfig shapes a Shedder.
type ShedConfig struct {
	// Low and High are queue-occupancy watermarks (fractions of total
	// queue capacity). Below Low nothing is shed; the shed threshold
	// climbs linearly from no classes at Low to every class but the top
	// one at High (defaults 0.5 and 0.9).
	Low, High float64
	// After is how long occupancy must stay at or above Low before
	// shedding engages — transient bursts ride out on the queues; only
	// sustained saturation sheds (default 0, shed immediately).
	After simtime.Duration
	// Classes is the number of priority classes (default 1). The top
	// class, Classes-1, is never shed.
	Classes int
	// OnShed, when non-nil, observes every refusal (the arrival's class
	// and the shed-threshold class in force), so callers can link shed
	// decisions into a causal event log. Observation must not mutate
	// shedder state.
	OnShed func(now simtime.Time, class, thresh int)
}

// Shedder is the watermark load-shed controller: fed the fleet's queue
// occupancy on every arrival, it drops lowest-class work first once
// saturation has been sustained past the configured delay.
type Shedder struct {
	cfg       ShedConfig
	saturated bool
	satSince  simtime.Time
	shed      uint64
}

// NewShedder builds a shedder, applying config defaults.
func NewShedder(cfg ShedConfig) *Shedder {
	if cfg.Low <= 0 {
		cfg.Low = 0.5
	}
	if cfg.High <= cfg.Low {
		cfg.High = cfg.Low + 0.4
	}
	if cfg.Classes < 1 {
		cfg.Classes = 1
	}
	return &Shedder{cfg: cfg}
}

// Admit decides one arrival: occupancy is the current fraction of total
// queue capacity in use, class the arrival's priority class (0 =
// lowest). It returns false when the arrival should be shed.
func (s *Shedder) Admit(now simtime.Time, occupancy float64, class int) bool {
	if occupancy < s.cfg.Low {
		s.saturated = false
		return true
	}
	if !s.saturated {
		s.saturated = true
		s.satSince = now
	}
	if now.Sub(s.satSince) < s.cfg.After {
		return true
	}
	level := (occupancy - s.cfg.Low) / (s.cfg.High - s.cfg.Low)
	if level > 1 {
		level = 1
	}
	// The threshold class climbs from 0 (shed nothing) at Low to
	// Classes-1 (shed everything below the top class) at High.
	thresh := int(level * float64(s.cfg.Classes))
	if thresh > s.cfg.Classes-1 {
		thresh = s.cfg.Classes - 1
	}
	if class < thresh {
		s.shed++
		if s.cfg.OnShed != nil {
			s.cfg.OnShed(now, class, thresh)
		}
		return false
	}
	return true
}

// Shed returns how many arrivals this shedder has refused.
func (s *Shedder) Shed() uint64 { return s.shed }

// BreakerState enumerates circuit-breaker states.
type BreakerState int

// The circuit-breaker states: Closed passes traffic, Open quarantines
// the tenant until its cooldown expires, HalfOpen probes whether the
// fault storm has passed.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String names the state for reports and traces.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig shapes a Breaker.
type BreakerConfig struct {
	// Threshold is how many faults within Window trip the breaker
	// (default 3).
	Threshold int
	// Window is the sliding fault-counting window (default 1ms).
	Window simtime.Duration
	// Cooldown is how long the breaker stays open after tripping; each
	// re-trip doubles it, up to MaxCooldown (defaults 100µs and 16x).
	Cooldown    simtime.Duration
	MaxCooldown simtime.Duration
	// OnTrip, when non-nil, observes every trip (with the cooldown now
	// in force and the lifetime trip count), so callers can link
	// quarantine decisions into a causal event log. Observation must not
	// mutate breaker state.
	OnTrip func(now simtime.Time, cooldown simtime.Duration, trips uint64)
}

// Breaker is a per-tenant circuit breaker over fault/recovery events: a
// tenant tripping repeated fault cycles is quarantined (Open) for a
// cooldown that doubles on every re-trip, instead of being allowed to
// churn the manager's repair path. A quiet probe in HalfOpen closes it.
type Breaker struct {
	cfg      BreakerConfig
	state    BreakerState
	recent   []simtime.Time // fault stamps within the sliding window
	openedAt simtime.Time
	cool     simtime.Duration
	trips    uint64
}

// NewBreaker builds a closed breaker, applying config defaults.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Threshold < 1 {
		cfg.Threshold = 3
	}
	if cfg.Window <= 0 {
		cfg.Window = simtime.Millisecond
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 100 * simtime.Microsecond
	}
	if cfg.MaxCooldown < cfg.Cooldown {
		cfg.MaxCooldown = 16 * cfg.Cooldown
	}
	return &Breaker{cfg: cfg, cool: cfg.Cooldown}
}

// State returns the breaker's state at now, advancing Open to HalfOpen
// once the cooldown has elapsed.
func (b *Breaker) State(now simtime.Time) BreakerState {
	if b.state == BreakerOpen && now.Sub(b.openedAt) >= b.cool {
		b.state = BreakerHalfOpen
	}
	return b.state
}

// RecordFault feeds one fault event. Reaching the threshold within the
// window — or any fault during a HalfOpen probe — trips the breaker.
func (b *Breaker) RecordFault(now simtime.Time) {
	if b.State(now) == BreakerHalfOpen {
		b.trip(now)
		return
	}
	if b.state == BreakerOpen {
		return // already quarantined; the cooldown owns the clock
	}
	keep := b.recent[:0]
	for _, t := range b.recent {
		if now.Sub(t) < b.cfg.Window {
			keep = append(keep, t)
		}
	}
	b.recent = append(keep, now)
	if len(b.recent) >= b.cfg.Threshold {
		b.trip(now)
	}
}

func (b *Breaker) trip(now simtime.Time) {
	if b.trips > 0 {
		b.cool *= 2
		if b.cool > b.cfg.MaxCooldown {
			b.cool = b.cfg.MaxCooldown
		}
	}
	b.trips++
	b.state = BreakerOpen
	b.openedAt = now
	b.recent = b.recent[:0]
	if b.cfg.OnTrip != nil {
		b.cfg.OnTrip(now, b.cool, b.trips)
	}
}

// RecordSuccess feeds one quiet probe: a HalfOpen breaker closes. It is
// a no-op in any other state.
func (b *Breaker) RecordSuccess(now simtime.Time) {
	if b.State(now) == BreakerHalfOpen {
		b.state = BreakerClosed
	}
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() uint64 { return b.trips }

// Cooldown returns the breaker's current (possibly doubled) cooldown.
func (b *Breaker) Cooldown() simtime.Duration { return b.cool }

// Backoff returns the jittered exponential backoff for a 0-based retry
// attempt: base doubling per attempt, capped at max, plus up to 25%
// deterministic jitter from rng (nil rng = no jitter). The caller
// charges the result to its guest clock — backing off costs the guest
// its own time, never the manager's.
func Backoff(rng *rand.Rand, base, max simtime.Duration, attempt int) simtime.Duration {
	if base <= 0 {
		base = 2 * simtime.Microsecond
	}
	if max < base {
		max = 32 * base
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if rng != nil {
		d += simtime.Duration(rng.Int63n(int64(d)/4 + 1))
	}
	return d
}
