package overload

import (
	"math/rand"
	"testing"

	"github.com/elisa-go/elisa/internal/simtime"
)

func at(us int64) simtime.Time { return simtime.Time(us) * simtime.Time(simtime.Microsecond) }

func TestOverloadTokenBucketRefill(t *testing.T) {
	// 1M ops/s = one token per microsecond; burst 2.
	b := NewTokenBucket(1_000_000, 2)
	if !b.Allow(at(0)) || !b.Allow(at(0)) {
		t.Fatal("burst of 2 must admit two ops at t=0")
	}
	if b.Allow(at(0)) {
		t.Fatal("empty bucket admitted a third op")
	}
	if !b.Allow(at(1)) {
		t.Fatal("1µs refill at 1M ops/s must admit one op")
	}
	if b.Allow(at(1)) {
		t.Fatal("bucket admitted beyond its refill")
	}
	// A long idle stretch refills at most to the burst.
	if !b.Allow(at(1000)) || !b.Allow(at(1000)) {
		t.Fatal("refilled bucket must admit a full burst")
	}
	if b.Allow(at(1000)) {
		t.Fatal("bucket refilled beyond its burst")
	}
	var nb *TokenBucket
	if !nb.Allow(at(0)) {
		t.Fatal("nil bucket must admit everything")
	}
}

func TestOverloadShedderClassLadder(t *testing.T) {
	s := NewShedder(ShedConfig{Low: 0.5, High: 0.9, Classes: 3})
	// Below the low watermark nothing is shed.
	for class := 0; class < 3; class++ {
		if !s.Admit(at(0), 0.3, class) {
			t.Fatalf("class %d shed below the low watermark", class)
		}
	}
	// Mid-ramp (level 0.5 -> threshold 1): only class 0 is shed.
	if s.Admit(at(1), 0.7, 0) {
		t.Fatal("class 0 admitted at occupancy 0.7")
	}
	if !s.Admit(at(1), 0.7, 1) || !s.Admit(at(1), 0.7, 2) {
		t.Fatal("classes 1/2 shed at occupancy 0.7")
	}
	// At/above the high watermark everything below the top class sheds.
	if s.Admit(at(2), 1.0, 0) || s.Admit(at(2), 1.0, 1) {
		t.Fatal("low/mid class admitted at full occupancy")
	}
	if !s.Admit(at(2), 1.0, 2) {
		t.Fatal("top class must never be shed")
	}
	if s.Shed() != 3 {
		t.Fatalf("shed count = %d, want 3", s.Shed())
	}
	// Dropping below the low watermark clears saturation.
	if !s.Admit(at(3), 0.1, 0) {
		t.Fatal("class 0 shed after occupancy recovered")
	}
}

func TestOverloadShedderSustainedDelay(t *testing.T) {
	s := NewShedder(ShedConfig{Low: 0.5, High: 0.9, Classes: 2, After: 10 * simtime.Microsecond})
	// Saturated, but not yet for long enough: admit.
	if !s.Admit(at(0), 1.0, 0) || !s.Admit(at(5), 1.0, 0) {
		t.Fatal("shed before the sustained-saturation delay elapsed")
	}
	if s.Admit(at(10), 1.0, 0) {
		t.Fatal("class 0 admitted after sustained saturation")
	}
	// A dip below Low resets the delay clock.
	if !s.Admit(at(11), 0.2, 0) {
		t.Fatal("shed after occupancy dipped")
	}
	if !s.Admit(at(12), 1.0, 0) {
		t.Fatal("the sustained-saturation clock must restart after a dip")
	}
}

func TestOverloadBreakerLifecycle(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 3, Window: 100 * simtime.Microsecond,
		Cooldown: 50 * simtime.Microsecond})
	if b.State(at(0)) != BreakerClosed {
		t.Fatal("new breaker not closed")
	}
	b.RecordFault(at(0))
	b.RecordFault(at(1))
	if b.State(at(1)) != BreakerClosed {
		t.Fatal("tripped below threshold")
	}
	b.RecordFault(at(2))
	if b.State(at(2)) != BreakerOpen {
		t.Fatal("three faults in the window must trip the breaker")
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}
	// Cooldown expiry: open -> half-open; a quiet probe closes it.
	if b.State(at(2+49)) != BreakerOpen {
		t.Fatal("breaker reopened before its cooldown")
	}
	if b.State(at(2+50)) != BreakerHalfOpen {
		t.Fatal("breaker must probe after its cooldown")
	}
	b.RecordSuccess(at(2 + 51))
	if b.State(at(2+51)) != BreakerClosed {
		t.Fatal("quiet half-open probe must close the breaker")
	}
	// A fault during a half-open probe re-trips with a doubled cooldown.
	b.RecordFault(at(200))
	b.RecordFault(at(201))
	b.RecordFault(at(202))
	if b.State(at(202)) != BreakerOpen {
		t.Fatal("second fault storm must re-trip")
	}
	if b.Cooldown() != 100*simtime.Microsecond {
		t.Fatalf("cooldown = %v, want doubled once to 100µs", b.Cooldown())
	}
	_ = b.State(at(202 + 100)) // doubled cooldown elapsed: half-open
	b.RecordFault(at(202 + 101))
	if b.State(at(202+101)) != BreakerOpen {
		t.Fatal("a fault during the half-open probe must re-trip immediately")
	}
	if b.Cooldown() != 200*simtime.Microsecond {
		t.Fatalf("cooldown = %v, want doubled twice to 200µs", b.Cooldown())
	}
}

func TestOverloadBreakerWindowSlides(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 2, Window: 10 * simtime.Microsecond})
	b.RecordFault(at(0))
	b.RecordFault(at(20)) // the first fault has aged out of the window
	if b.State(at(20)) != BreakerClosed {
		t.Fatal("faults outside the window must not count toward the threshold")
	}
	b.RecordFault(at(25))
	if b.State(at(25)) != BreakerOpen {
		t.Fatal("two faults inside the window must trip")
	}
}

func TestOverloadBackoffDeterministicAndBounded(t *testing.T) {
	base, max := 2*simtime.Microsecond, 16*simtime.Microsecond
	a := rand.New(rand.NewSource(7))
	bng := rand.New(rand.NewSource(7))
	for attempt := 0; attempt < 8; attempt++ {
		da := Backoff(a, base, max, attempt)
		db := Backoff(bng, base, max, attempt)
		if da != db {
			t.Fatalf("attempt %d: same seed gave %v vs %v", attempt, da, db)
		}
		floor := base << uint(attempt)
		if floor > max {
			floor = max
		}
		if da < floor || da > max+max/4 {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, da, floor, max+max/4)
		}
	}
	// No RNG: pure exponential, capped.
	if d := Backoff(nil, base, max, 0); d != base {
		t.Fatalf("attempt 0 without jitter = %v, want %v", d, base)
	}
	if d := Backoff(nil, base, max, 20); d != max {
		t.Fatalf("huge attempt without jitter = %v, want the %v cap", d, max)
	}
}
