package perfgate

import (
	"testing"

	"github.com/elisa-go/elisa/internal/core"
	"github.com/elisa-go/elisa/internal/shm"
	"github.com/elisa-go/elisa/internal/simtime"
)

// Zero-allocation pins for the simulator's hot paths. The benchdiff
// trajectory gate catches allocation regressions too, but only when
// someone runs it; these pins fail plain `go test` the moment a change
// re-introduces a heap allocation per simulated op. testing.AllocsPerRun
// runs with GC pacing disabled, so the counts are exact, not sampled.

// TestZeroAllocLaneCallPath: the steady-state gate call — variadic and
// fixed-arity — performs zero heap allocations per op.
func TestZeroAllocLaneCallPath(t *testing.T) {
	f, err := newKernelFixture()
	if err != nil {
		t.Fatal(err)
	}
	v := f.vm.VCPU()
	if _, err := f.h.Call(v, kfnNop); err != nil { // warm the slot
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := f.h.Call(v, kfnNop, 1, 2); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("Call allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := f.h.CallArgs(v, kfnNop, [4]uint64{1, 2, 3, 4}); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("CallArgs allocates %v per op, want 0", n)
	}
	reqs := make([]core.Req, 8)
	for i := range reqs {
		reqs[i] = core.Req{Fn: kfnNop}
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := f.h.CallMulti(v, reqs); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("CallMulti allocates %v per batch, want 0", n)
	}
}

// TestZeroAllocLaneRingDrain: a full 32-op ring cycle — submit, flush
// (or manager-poller drain), poll — performs zero heap allocations on
// both drain sides.
func TestZeroAllocLaneRingDrain(t *testing.T) {
	f, err := newKernelFixture()
	if err != nil {
		t.Fatal(err)
	}
	v := f.vm.VCPU()
	rc, err := f.h.Ring(v, core.RingConfig{Depth: 64, Deadline: simtime.Duration(1) << 40})
	if err != nil {
		t.Fatal(err)
	}
	comps := make([]shm.Comp, 32)
	submit := func() {
		for i := 0; i < 32; i++ {
			if err := rc.Submit(v, kfnNop, uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	poll := func() {
		for rc.Pending() > 0 {
			if _, err := rc.Poll(v, comps); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Warm both sides once: the first flush lazily backs the gate slot.
	submit()
	if err := rc.Flush(v); err != nil {
		t.Fatal(err)
	}
	poll()

	if n := testing.AllocsPerRun(100, func() {
		submit()
		if err := rc.Flush(v); err != nil {
			t.Fatal(err)
		}
		poll()
	}); n != 0 {
		t.Fatalf("gate-flush drain allocates %v per 32-op batch, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		submit()
		for rc.Pending() > 0 {
			if _, err := f.mgr.DrainRings(32); err != nil {
				t.Fatal(err)
			}
			poll()
		}
	}); n != 0 {
		t.Fatalf("manager-poller drain allocates %v per 32-op batch, want 0", n)
	}
}
