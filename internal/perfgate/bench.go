// Package perfgate is the continuous-performance trajectory of the
// repository: schema-versioned BENCH_<n>.json snapshots recording, for
// every bench kernel, the *simulated* figure of merit (ops per simulated
// second — deterministic, so tight thresholds hold) and the *simulator's*
// own efficiency (wall-clock ns per simulated second and allocations per
// op — hardware-dependent, so thresholds are generous), plus the
// comparator elisa-benchdiff runs in CI to fail the build on regressions
// in either dimension.
package perfgate

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
)

// SchemaVersion is the BENCH_<n>.json schema this package writes.
// Readers reject files with a different version rather than guessing.
const SchemaVersion = 1

// KernelResult is one kernel's measurements in a Bench snapshot.
type KernelResult struct {
	// ID and Title identify the kernel (see Kernels).
	ID    string `json:"id"`
	Title string `json:"title"`
	// SimOps is the fixed operation count the kernel ran; SimElapsedNS
	// is the simulated time those ops consumed. Both are deterministic:
	// the same code and seed reproduce them bit-for-bit.
	SimOps       int64 `json:"sim_ops"`
	SimElapsedNS int64 `json:"sim_elapsed_ns"`
	// SimOpsPerSec is the simulated figure of merit: SimOps over the
	// simulated elapsed seconds.
	SimOpsPerSec float64 `json:"sim_ops_per_sec"`
	// WallNsPerSimSec measures the simulator itself: host wall-clock
	// nanoseconds spent per simulated second. Hardware-dependent.
	WallNsPerSimSec float64 `json:"wall_ns_per_sim_sec"`
	// AllocsPerOp is heap allocations per operation (testing.B-style
	// Mallocs-delta accounting). Near-deterministic for a fixed runtime.
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Bench is one BENCH_<n>.json snapshot.
type Bench struct {
	// Schema is the file-format version (SchemaVersion).
	Schema int `json:"schema"`
	// Quick reports whether kernels ran at quick (CI) scale. Diff
	// refuses to compare quick against full runs.
	Quick bool `json:"quick"`
	// Kernels holds one result per kernel, in registry order.
	Kernels []KernelResult `json:"kernels"`
}

// Kernel looks up one kernel's result by ID.
func (b *Bench) Kernel(id string) (KernelResult, bool) {
	for _, k := range b.Kernels {
		if k.ID == id {
			return k, true
		}
	}
	return KernelResult{}, false
}

// Write marshals a snapshot to path (indented, trailing newline), so
// committed baselines diff cleanly.
func Write(path string, b *Bench) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Read unmarshals a snapshot and validates its schema version.
func Read(path string) (*Bench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Bench
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("perfgate: %s: %w", path, err)
	}
	if b.Schema != SchemaVersion {
		return nil, fmt.Errorf("perfgate: %s: schema %d, this tool reads %d", path, b.Schema, SchemaVersion)
	}
	return &b, nil
}

var benchName = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// Trajectory lists dir's BENCH_<n>.json files in ascending n order.
func Trajectory(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type numbered struct {
		n    int
		name string
	}
	var found []numbered
	for _, e := range ents {
		m := benchName.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		var n int
		fmt.Sscanf(m[1], "%d", &n)
		found = append(found, numbered{n, e.Name()})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].n < found[j].n })
	out := make([]string, len(found))
	for i, f := range found {
		out[i] = filepath.Join(dir, f.name)
	}
	return out, nil
}

// NextPath returns the next unused BENCH_<n>.json path in dir (the
// trajectory append point): BENCH_0.json in an empty dir, then one past
// the highest existing index.
func NextPath(dir string) (string, error) {
	existing, err := Trajectory(dir)
	if err != nil {
		return "", err
	}
	next := 0
	if len(existing) > 0 {
		last := filepath.Base(existing[len(existing)-1])
		m := benchName.FindStringSubmatch(last)
		fmt.Sscanf(m[1], "%d", &next)
		next++
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", next)), nil
}
