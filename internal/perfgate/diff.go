package perfgate

import (
	"fmt"
	"strings"
)

// Direction says which way a metric is allowed to move.
type Direction int

// Metric directions.
const (
	// HigherIsBetter flags a regression when the metric drops.
	HigherIsBetter Direction = iota
	// LowerIsBetter flags a regression when the metric rises.
	LowerIsBetter
)

// String names the direction for reports.
func (d Direction) String() string {
	if d == HigherIsBetter {
		return "higher-is-better"
	}
	return "lower-is-better"
}

// MetricSpec is one compared metric: how to read it off a KernelResult,
// which direction is good, and how much relative movement the gate
// tolerates before failing.
type MetricSpec struct {
	// Name is the metric's JSON field name, used in reports.
	Name string
	// Get extracts the metric from a result.
	Get func(KernelResult) float64
	// Dir is the direction of goodness.
	Dir Direction
	// Threshold is the tolerated relative regression (0.02 = 2%).
	Threshold float64
}

// DefaultSpecs is the CI gate's metric set. The simulated ops rate is
// deterministic, so its threshold is tight; allocations are stable
// enough for a generous gate. Wall time per simulated second swings by
// orders of magnitude with host load and hardware (a baseline committed
// from one machine is compared on another in CI), so it ships with
// Threshold 0 — recorded in every snapshot for the trajectory, but not
// gated unless a threshold is set explicitly.
func DefaultSpecs() []MetricSpec {
	return []MetricSpec{
		{Name: "sim_ops_per_sec", Get: func(r KernelResult) float64 { return r.SimOpsPerSec }, Dir: HigherIsBetter, Threshold: 0.02},
		{Name: "wall_ns_per_sim_sec", Get: func(r KernelResult) float64 { return r.WallNsPerSimSec }, Dir: LowerIsBetter, Threshold: 0},
		{Name: "allocs_per_op", Get: func(r KernelResult) float64 { return r.AllocsPerOp }, Dir: LowerIsBetter, Threshold: 0.25},
	}
}

// Regression is one metric that moved the wrong way past its threshold.
type Regression struct {
	// Kernel and Metric identify what regressed.
	Kernel string
	Metric string
	// Base and Cur are the compared values; Delta is the relative change
	// signed so that positive is always worse (direction-normalised).
	Base, Cur, Delta float64
	// Threshold is the limit Delta exceeded.
	Threshold float64
}

// String renders one regression as a report line.
func (r Regression) String() string {
	return fmt.Sprintf("%s %s: %.4g -> %.4g (%+.1f%% worse, threshold %.0f%%)",
		r.Kernel, r.Metric, r.Base, r.Cur, r.Delta*100, r.Threshold*100)
}

// Diff compares a current snapshot against a baseline under specs and
// returns every regression. It errors (rather than reporting clean) when
// the snapshots are not comparable: mismatched schema or quick/full
// scale, or a kernel present in the baseline but missing now.
func Diff(base, cur *Bench, specs []MetricSpec) ([]Regression, error) {
	if base.Schema != cur.Schema {
		return nil, fmt.Errorf("perfgate: schema mismatch: baseline %d vs current %d", base.Schema, cur.Schema)
	}
	if base.Quick != cur.Quick {
		return nil, fmt.Errorf("perfgate: scale mismatch: baseline quick=%v vs current quick=%v", base.Quick, cur.Quick)
	}
	if len(specs) == 0 {
		specs = DefaultSpecs()
	}
	var regs []Regression
	var missing []string
	for _, bk := range base.Kernels {
		ck, ok := cur.Kernel(bk.ID)
		if !ok {
			missing = append(missing, bk.ID)
			continue
		}
		for _, spec := range specs {
			if spec.Threshold <= 0 {
				continue // informational metric: recorded, never gated
			}
			bv, cv := spec.Get(bk), spec.Get(ck)
			if bv == 0 {
				continue // no baseline signal: relative compare undefined
			}
			// Normalise so positive delta always means "worse".
			delta := (cv - bv) / bv
			if spec.Dir == HigherIsBetter {
				delta = -delta
			}
			if delta > spec.Threshold {
				regs = append(regs, Regression{
					Kernel: bk.ID, Metric: spec.Name,
					Base: bv, Cur: cv, Delta: delta, Threshold: spec.Threshold,
				})
			}
		}
	}
	if len(missing) > 0 {
		return nil, fmt.Errorf("perfgate: kernels in baseline but not in current snapshot: %s", strings.Join(missing, ", "))
	}
	return regs, nil
}
