package perfgate

import (
	"fmt"
	"runtime"
	"time"

	"github.com/elisa-go/elisa/internal/cluster"
	"github.com/elisa-go/elisa/internal/core"
	"github.com/elisa-go/elisa/internal/fleet"
	"github.com/elisa-go/elisa/internal/hv"
	"github.com/elisa-go/elisa/internal/mem"
	"github.com/elisa-go/elisa/internal/shm"
	"github.com/elisa-go/elisa/internal/simtime"
	"github.com/elisa-go/elisa/internal/workload"
)

// Kernel is one bench kernel: a deterministic simulated workload whose
// op count and simulated elapsed time reproduce bit-for-bit run to run.
// Measure wraps the prepared body with the host-side wall-clock and
// allocation counters.
type Kernel struct {
	// ID is the stable identifier Diff matches results by.
	ID string
	// Title is the human-readable description.
	Title string
	// Prepare builds the kernel's fixture (machines, guests, warm
	// slots) at quick (CI) or full scale and returns the measured body,
	// which executes the workload and reports the operation count and
	// the simulated time those ops consumed. Measure's wall-clock and
	// allocation window covers only the body, so allocs_per_op reads
	// the steady-state per-op cost, not amortised fixture setup.
	Prepare func(quick bool) (run func() (ops int64, elapsed simtime.Duration, err error), err error)
}

// LaneParallelism is the lane fan-out the parallel_fleet kernel hands to
// its cluster fleet (elisa-bench -parallel overrides it). The simulated
// figures are byte-identical at any setting — lanes only move the
// simulator's own wall-clock — so snapshots taken at different widths
// stay comparable on the gated metrics.
var LaneParallelism = defaultLaneParallelism()

func defaultLaneParallelism() int {
	if n := runtime.GOMAXPROCS(0); n < 4 {
		return n
	}
	return 4
}

// Manager function IDs the kernels register on their private fixtures.
const (
	kfnNop  uint64 = 0xBE9C0010
	kfnEcho uint64 = 0xBE9C0011
)

// kernelFixture is the one-guest ELISA machine the micro kernels run on.
type kernelFixture struct {
	hv  *hv.Hypervisor
	mgr *core.Manager
	vm  *hv.VM
	h   *core.Handle
}

func newKernelFixture() (*kernelFixture, error) {
	h, err := hv.New(hv.Config{PhysBytes: 64 * 1024 * 1024})
	if err != nil {
		return nil, err
	}
	mgr, err := core.NewManager(h, core.ManagerConfig{})
	if err != nil {
		return nil, err
	}
	if _, err := mgr.CreateObject("perf", mem.PageSize); err != nil {
		return nil, err
	}
	if err := mgr.RegisterFunc(kfnNop, func(*core.CallContext) (uint64, error) { return 0, nil }); err != nil {
		return nil, err
	}
	if err := mgr.RegisterFunc(kfnEcho, func(c *core.CallContext) (uint64, error) {
		var b [64]byte
		if err := c.ReadExchange(0, b[:]); err != nil {
			return 0, err
		}
		return uint64(b[0]), nil
	}); err != nil {
		return nil, err
	}
	vm, err := h.CreateVM("perf-guest", 16*mem.PageSize)
	if err != nil {
		return nil, err
	}
	g, err := core.NewGuest(vm, mgr)
	if err != nil {
		return nil, err
	}
	handle, err := g.Attach("perf")
	if err != nil {
		return nil, err
	}
	return &kernelFixture{hv: h, mgr: mgr, vm: vm, h: handle}, nil
}

func scale(quick bool, full, q int) int {
	if quick {
		return q
	}
	return full
}

// prepareCallRTT measures the steady-state per-call ELISA gate round
// trip.
func prepareCallRTT(quick bool) (func() (int64, simtime.Duration, error), error) {
	f, err := newKernelFixture()
	if err != nil {
		return nil, err
	}
	v := f.vm.VCPU()
	if _, err := f.h.Call(v, kfnNop); err != nil { // warm the slot
		return nil, err
	}
	ops := scale(quick, 10000, 500)
	return func() (int64, simtime.Duration, error) {
		start := v.Clock().Now()
		for i := 0; i < ops; i++ {
			if _, err := f.h.Call(v, kfnNop); err != nil {
				return 0, 0, err
			}
		}
		return int64(ops), v.Clock().Elapsed(start), nil
	}, nil
}

// prepareVMCallRTT measures the empty hypercall — the exit-ful baseline
// the paper compares ELISA against.
func prepareVMCallRTT(quick bool) (func() (int64, simtime.Duration, error), error) {
	f, err := newKernelFixture()
	if err != nil {
		return nil, err
	}
	const hcNop = 0xBE9C0012
	if err := f.hv.RegisterHypercall(hcNop, func(*hv.VM, [4]uint64) (uint64, error) { return 0, nil }); err != nil {
		return nil, err
	}
	v := f.vm.VCPU()
	ops := scale(quick, 10000, 500)
	return func() (int64, simtime.Duration, error) {
		start := v.Clock().Now()
		for i := 0; i < ops; i++ {
			if _, err := v.VMCall(hcNop); err != nil {
				return 0, 0, err
			}
		}
		return int64(ops), v.Clock().Elapsed(start), nil
	}, nil
}

// prepareRingFlush measures the batched ring datapath: descriptors
// amortise one gate crossing per 32-op batch through explicit flushes.
func prepareRingFlush(quick bool) (func() (int64, simtime.Duration, error), error) {
	f, err := newKernelFixture()
	if err != nil {
		return nil, err
	}
	v := f.vm.VCPU()
	rc, err := f.h.Ring(v, core.RingConfig{Depth: 64, Deadline: simtime.Duration(1) << 40})
	if err != nil {
		return nil, err
	}
	const batch = 32
	batches := scale(quick, 256, 16)
	comps := make([]shm.Comp, batch)
	return func() (int64, simtime.Duration, error) {
		start := v.Clock().Now()
		for b := 0; b < batches; b++ {
			for i := 0; i < batch; i++ {
				if err := rc.Submit(v, kfnNop, uint64(i)); err != nil {
					return 0, 0, err
				}
			}
			if err := rc.Flush(v); err != nil {
				return 0, 0, err
			}
			for rc.Pending() > 0 {
				if _, err := rc.Poll(v, comps); err != nil {
					return 0, 0, err
				}
			}
		}
		return int64(batch * batches), v.Clock().Elapsed(start), nil
	}, nil
}

// prepareRingPoller measures the fully exit-less datapath: the guest
// only submits; the manager-side poller drains every batch.
func prepareRingPoller(quick bool) (func() (int64, simtime.Duration, error), error) {
	f, err := newKernelFixture()
	if err != nil {
		return nil, err
	}
	v := f.vm.VCPU()
	rc, err := f.h.Ring(v, core.RingConfig{Depth: 64, Deadline: simtime.Duration(1) << 40})
	if err != nil {
		return nil, err
	}
	const batch = 32
	batches := scale(quick, 256, 16)
	comps := make([]shm.Comp, batch)
	return func() (int64, simtime.Duration, error) {
		start := v.Clock().Now()
		for b := 0; b < batches; b++ {
			for i := 0; i < batch; i++ {
				if err := rc.Submit(v, kfnNop, uint64(i)); err != nil {
					return 0, 0, err
				}
			}
			for rc.Pending() > 0 {
				if _, err := f.mgr.DrainRings(batch); err != nil {
					return 0, 0, err
				}
				if _, err := rc.Poll(v, comps); err != nil {
					return 0, 0, err
				}
			}
		}
		return int64(batch * batches), v.Clock().Elapsed(start), nil
	}, nil
}

// prepareExchangePut measures an exchange-buffer put plus the call that
// consumes it — the isolated data-passing path.
func prepareExchangePut(quick bool) (func() (int64, simtime.Duration, error), error) {
	f, err := newKernelFixture()
	if err != nil {
		return nil, err
	}
	v := f.vm.VCPU()
	ops := scale(quick, 5000, 250)
	return func() (int64, simtime.Duration, error) {
		var payload [64]byte
		payload[0] = 1
		start := v.Clock().Now()
		for i := 0; i < ops; i++ {
			if err := f.h.ExchangeWrite(v, 0, payload[:]); err != nil {
				return 0, 0, err
			}
			if ret, err := f.h.Call(v, kfnEcho); err != nil {
				return 0, 0, err
			} else if ret != 1 {
				return 0, 0, fmt.Errorf("perfgate: exchange echo returned %d", ret)
			}
		}
		return int64(ops), v.Clock().Elapsed(start), nil
	}, nil
}

// prepareFleetMix measures the multi-tenant scheduler end to end: four
// tenants on two cores over the exit-less ring datapath with the
// manager poller interleaved. Ops are completed operations; elapsed is
// the fixed run horizon.
func prepareFleetMix(quick bool) (func() (int64, simtime.Duration, error), error) {
	h, err := hv.New(hv.Config{PhysBytes: 256 * 1024 * 1024})
	if err != nil {
		return nil, err
	}
	mgr, err := core.NewManager(h, core.ManagerConfig{})
	if err != nil {
		return nil, err
	}
	if err := mgr.RegisterFunc(kfnNop, func(*core.CallContext) (uint64, error) { return 0, nil }); err != nil {
		return nil, err
	}
	for i := 0; i < 4; i++ {
		if _, err := mgr.CreateObject(fmt.Sprintf("mix-%d", i), mem.PageSize); err != nil {
			return nil, err
		}
	}
	s, err := fleet.New(h, mgr, fleet.Config{
		Cores: 2, Seed: 42, QueueDepth: 64,
		RingDepth: 64, PollBudget: 64,
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < 4; i++ {
		spec := fleet.TenantSpec{
			Name:    fmt.Sprintf("mix%d", i),
			Weight:  1 + i%2,
			Objects: []string{fmt.Sprintf("mix-%d", i)},
			Fn:      kfnNop,
			RateOPS: 2_000_000,
		}
		if _, err := s.Admit(spec); err != nil {
			return nil, err
		}
	}
	horizon := simtime.Duration(scale(quick, 2_000_000, 300_000)) // 2ms / 300µs
	return func() (int64, simtime.Duration, error) {
		rep, err := s.Run(horizon)
		if err != nil {
			return 0, 0, err
		}
		var done int64
		for _, tr := range rep.Tenants {
			done += int64(tr.Completed)
		}
		if done == 0 {
			return 0, 0, fmt.Errorf("perfgate: fleet_mix completed nothing")
		}
		return done, rep.Duration, nil
	}, nil
}

// prepareParallelFleet measures the sharded fleet's lane executor: eight
// tenants over a 4-shard cluster advancing in eight scheduling windows,
// with per-shard lanes fanned out LaneParallelism wide. The simulated
// figures are byte-identical at any parallelism; wall_ns_per_sim_sec is
// the metric lanes move, and the trajectory tracks it. Ops are completed
// operations; elapsed is the run horizon.
func prepareParallelFleet(quick bool) (func() (int64, simtime.Duration, error), error) {
	const shards = 4
	c, err := cluster.New(cluster.Config{Shards: shards, Seed: 21, PhysBytes: 64 * 1024 * 1024})
	if err != nil {
		return nil, err
	}
	if err := c.RegisterFunc(kfnNop, func(*core.CallContext) (uint64, error) { return 0, nil }); err != nil {
		return nil, err
	}
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("lane-%d", i)
		if err := c.Ring().Pin(name, i%shards); err != nil {
			return nil, err
		}
		if _, err := c.CreateObject(name, mem.PageSize); err != nil {
			return nil, err
		}
	}
	horizon := simtime.Duration(scale(quick, 8_000_000, 1_600_000)) // 8ms / 1.6ms
	f, err := c.NewFleet(cluster.FleetConfig{
		Config: fleet.Config{
			Cores: 2, Seed: 42, QueueDepth: 32, RingDepth: 32,
			Parallelism: LaneParallelism,
		},
		Slice: horizon / 8,
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < 8; i++ {
		spec := fleet.TenantSpec{
			Name:    fmt.Sprintf("lane%d", i),
			Objects: []string{fmt.Sprintf("lane-%d", i)},
			Fn:      kfnNop,
			RateOPS: 1_000_000,
		}
		if _, err := f.Admit(spec); err != nil {
			return nil, err
		}
	}
	return func() (int64, simtime.Duration, error) {
		rep, err := f.Run(horizon)
		if err != nil {
			return 0, 0, err
		}
		var done int64
		for _, tr := range rep.Tenants {
			done += int64(tr.Completed)
		}
		if done == 0 {
			return 0, 0, fmt.Errorf("perfgate: parallel_fleet completed nothing")
		}
		return done, rep.Duration, nil
	}, nil
}

// prepareClusterRoute measures the sharded control plane's datapaths:
// routed single-shard calls (resolved once at attach, exit-less
// thereafter — same 196 ns as an unsharded call) interleaved with
// cross-shard CallMulti fan-outs over a 4-shard cluster (one gate
// crossing per owning shard, merged deterministically). Ops count
// individual manager calls; elapsed is the guest's summed simulated
// time across replicas.
func prepareClusterRoute(quick bool) (func() (int64, simtime.Duration, error), error) {
	const shards = 4
	c, err := cluster.New(cluster.Config{Shards: shards, Seed: 7, PhysBytes: 32 * 1024 * 1024})
	if err != nil {
		return nil, err
	}
	if err := c.RegisterFunc(kfnNop, func(*core.CallContext) (uint64, error) { return 0, nil }); err != nil {
		return nil, err
	}
	objs := make([]string, shards)
	for i := range objs {
		objs[i] = fmt.Sprintf("route-%d", i)
		if err := c.Ring().Pin(objs[i], i); err != nil {
			return nil, err
		}
		if _, err := c.CreateObject(objs[i], mem.PageSize); err != nil {
			return nil, err
		}
	}
	g, err := c.NewGuest("route-guest", 16*mem.PageSize)
	if err != nil {
		return nil, err
	}
	handles := make([]*cluster.Handle, shards)
	for i, name := range objs {
		h, err := g.Attach(name) // routing slow path + warm slot, outside the window
		if err != nil {
			return nil, err
		}
		if _, err := h.Call(kfnNop); err != nil {
			return nil, err
		}
		handles[i] = h
	}
	singles := scale(quick, 4000, 200)
	batches := scale(quick, 500, 25)
	reqs := make([]cluster.MultiReq, shards)
	return func() (int64, simtime.Duration, error) {
		start := g.Elapsed()
		for i := 0; i < singles; i++ {
			if _, err := handles[i%shards].Call(kfnNop); err != nil {
				return 0, 0, err
			}
		}
		for b := 0; b < batches; b++ {
			for i := range reqs {
				reqs[i] = cluster.MultiReq{Object: objs[i], Fn: kfnNop}
			}
			if err := g.CallMulti(reqs); err != nil {
				return 0, 0, err
			}
			for i := range reqs {
				if reqs[i].Err != nil {
					return 0, 0, reqs[i].Err
				}
			}
		}
		return int64(singles + batches*shards), g.Elapsed() - start, nil
	}, nil
}

// prepareRebalanceConverge measures the auto-rebalancing control loop
// end to end: the committed skewed trace (four tenants, every object
// pinned on shard 0 of 4) replayed with the rebalancer armed, over the
// exit-less ring datapath. Ops are completed operations; elapsed is the
// replay horizon. The kernel errors if the controller never migrates —
// a bench of the control plane has to exercise the control plane — and,
// at full scale, if the final imbalance misses the convergence target.
func prepareRebalanceConverge(quick bool) (func() (int64, simtime.Duration, error), error) {
	specs, err := workload.RebalanceSpecs()
	if err != nil {
		return nil, err
	}
	tr, err := workload.RebalanceTrace()
	if err != nil {
		return nil, err
	}
	horizon := workload.RebalanceHorizon
	events := tr.Events
	if quick {
		// Half the horizon: the three migrations land by tick 3 (120 µs),
		// so the loop is still fully exercised — only the converged tail
		// is shorter.
		horizon = workload.RebalanceHorizon / 2
		cut := 0
		for cut < len(events) && simtime.Duration(events[cut].At) < horizon {
			cut++
		}
		events = events[:cut]
	}
	c, err := cluster.New(cluster.Config{Shards: 4, Seed: 11})
	if err != nil {
		return nil, err
	}
	if err := c.RegisterFunc(workload.RebalanceFn, func(*core.CallContext) (uint64, error) { return 0, nil }); err != nil {
		return nil, err
	}
	for _, sp := range specs {
		for _, obj := range sp.Objects {
			if err := c.Ring().Pin(obj, 0); err != nil {
				return nil, err
			}
			if _, err := c.CreateObject(obj, mem.PageSize); err != nil {
				return nil, err
			}
		}
	}
	f, err := c.NewFleet(cluster.FleetConfig{
		Config:    fleet.Config{Cores: 2, Seed: 42, QueueDepth: 32, RingDepth: 16},
		Rebalance: &cluster.RebalanceConfig{},
	})
	if err != nil {
		return nil, err
	}
	for _, sp := range specs {
		ts, err := fleet.SpecFromWorkload(sp, 42)
		if err != nil {
			return nil, err
		}
		if _, err := f.Admit(ts); err != nil {
			return nil, err
		}
	}
	return func() (int64, simtime.Duration, error) {
		rep, err := f.Replay(&workload.Trace{Events: events}, horizon)
		if err != nil {
			return 0, 0, err
		}
		st := c.Stats()
		if st.Rebalances == 0 {
			return 0, 0, fmt.Errorf("perfgate: rebalance_converge executed no migrations")
		}
		if !quick && st.Imbalance > 1.25 {
			return 0, 0, fmt.Errorf("perfgate: rebalance_converge finished at imbalance %.3f, want <= 1.25", st.Imbalance)
		}
		var done int64
		for _, t := range rep.Tenants {
			done += int64(t.Completed)
		}
		if done == 0 {
			return 0, 0, fmt.Errorf("perfgate: rebalance_converge completed nothing")
		}
		return done, rep.Duration, nil
	}, nil
}

// Kernels returns the bench-kernel registry in snapshot order.
func Kernels() []Kernel {
	return []Kernel{
		{ID: "call_rtt", Title: "ELISA gate call round trip (per-op path)", Prepare: prepareCallRTT},
		{ID: "vmcall_rtt", Title: "VMCALL hypercall round trip (exit-ful baseline)", Prepare: prepareVMCallRTT},
		{ID: "ring_flush", Title: "call ring, guest-flushed 32-op batches", Prepare: prepareRingFlush},
		{ID: "ring_poller", Title: "call ring, manager-poller drained (exit-less)", Prepare: prepareRingPoller},
		{ID: "exchange_put", Title: "exchange-buffer put + consuming call", Prepare: prepareExchangePut},
		{ID: "fleet_mix", Title: "4-tenant fleet on 2 cores over rings", Prepare: prepareFleetMix},
		{ID: "parallel_fleet", Title: "8-tenant 4-shard fleet through parallel lanes", Prepare: prepareParallelFleet},
		{ID: "cluster_route", Title: "routed calls + 4-shard CallMulti fan-out", Prepare: prepareClusterRoute},
		{ID: "rebalance_converge", Title: "auto-rebalancer convergence on the committed skewed trace", Prepare: prepareRebalanceConverge},
	}
}

// Measure prepares one kernel, runs its body, and derives the
// KernelResult: the simulated figures come from the kernel's
// deterministic clock; wall time and allocations come from one
// instrumented host run (testing.B-style Mallocs-delta accounting
// around a single pass, which is exact for fixed-op kernels and keeps
// CI time bounded). Fixture construction happens in Prepare, outside
// the instrumented window, so allocs_per_op is the steady-state per-op
// figure — a kernel whose hot path is allocation-free reads 0.0 here.
func Measure(k Kernel, quick bool) (KernelResult, error) {
	run, err := k.Prepare(quick)
	if err != nil {
		return KernelResult{}, fmt.Errorf("perfgate: kernel %s: %w", k.ID, err)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	wallStart := time.Now()
	ops, elapsed, err := run()
	wall := time.Since(wallStart)
	runtime.ReadMemStats(&after)
	if err != nil {
		return KernelResult{}, fmt.Errorf("perfgate: kernel %s: %w", k.ID, err)
	}
	if ops <= 0 || elapsed <= 0 {
		return KernelResult{}, fmt.Errorf("perfgate: kernel %s: degenerate run (ops=%d, elapsed=%d)", k.ID, ops, elapsed)
	}
	simSecs := float64(elapsed) / 1e9
	return KernelResult{
		ID:              k.ID,
		Title:           k.Title,
		SimOps:          ops,
		SimElapsedNS:    int64(elapsed),
		SimOpsPerSec:    float64(ops) / simSecs,
		WallNsPerSimSec: float64(wall.Nanoseconds()) / simSecs,
		AllocsPerOp:     float64(after.Mallocs-before.Mallocs) / float64(ops),
	}, nil
}

// MeasureAll runs every registered kernel and assembles a snapshot.
func MeasureAll(quick bool) (*Bench, error) {
	b := &Bench{Schema: SchemaVersion, Quick: quick}
	for _, k := range Kernels() {
		r, err := Measure(k, quick)
		if err != nil {
			return nil, err
		}
		b.Kernels = append(b.Kernels, r)
	}
	return b, nil
}
