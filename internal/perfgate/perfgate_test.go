package perfgate

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sample builds a plausible snapshot for diff tests.
func sample() *Bench {
	return &Bench{
		Schema: SchemaVersion,
		Quick:  true,
		Kernels: []KernelResult{
			{ID: "call_rtt", Title: "t", SimOps: 500, SimElapsedNS: 98_000, SimOpsPerSec: 5.1e6, WallNsPerSimSec: 2e9, AllocsPerOp: 3},
			{ID: "ring_flush", Title: "t", SimOps: 512, SimElapsedNS: 10_000, SimOpsPerSec: 5.1e7, WallNsPerSimSec: 9e9, AllocsPerOp: 1},
		},
	}
}

func TestDiffCleanOnIdenticalSnapshots(t *testing.T) {
	regs, err := Diff(sample(), sample(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("identical snapshots regressed: %v", regs)
	}
}

// The acceptance bar: a synthetic regression must make Diff report.
// Wall time is gated here via an explicit spec — by default it is
// informational only (Threshold 0), since it tracks host speed.
func TestDiffFlagsSyntheticRegression(t *testing.T) {
	base, cur := sample(), sample()
	cur.Kernels[0].SimOpsPerSec *= 0.90  // -10% on a 2% higher-is-better gate
	cur.Kernels[1].AllocsPerOp = 2       // +100% on a 25% lower-is-better gate
	cur.Kernels[1].WallNsPerSimSec *= 10 // way past the opted-in 50% wall gate
	specs := DefaultSpecs()
	for i := range specs {
		if specs[i].Name == "wall_ns_per_sim_sec" {
			specs[i].Threshold = 0.50
		}
	}
	regs, err := Diff(base, cur, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 3 {
		t.Fatalf("got %d regressions, want 3: %v", len(regs), regs)
	}
	byKey := map[string]Regression{}
	for _, r := range regs {
		byKey[r.Kernel+"/"+r.Metric] = r
	}
	if r, ok := byKey["call_rtt/sim_ops_per_sec"]; !ok {
		t.Error("sim ops drop not flagged")
	} else if r.Delta < 0.09 || r.Delta > 0.11 {
		t.Errorf("sim ops delta = %v, want ~0.10", r.Delta)
	}
	if _, ok := byKey["ring_flush/allocs_per_op"]; !ok {
		t.Error("alloc growth not flagged")
	}
	if r, ok := byKey["ring_flush/wall_ns_per_sim_sec"]; !ok {
		t.Error("wall growth not flagged")
	} else if !strings.Contains(r.String(), "wall_ns_per_sim_sec") {
		t.Errorf("regression line %q missing metric name", r.String())
	}
}

// Wall time per simulated second is host-dependent (baseline machine vs
// CI runner), so the default specs record it without gating it.
func TestDiffWallUngatedByDefault(t *testing.T) {
	base, cur := sample(), sample()
	cur.Kernels[0].WallNsPerSimSec *= 100 // two orders of host slowdown
	regs, err := Diff(base, cur, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("default specs gated wall time: %v", regs)
	}
}

// Improvements in either direction never trip the gate.
func TestDiffIgnoresImprovements(t *testing.T) {
	base, cur := sample(), sample()
	cur.Kernels[0].SimOpsPerSec *= 2   // faster sim: good
	cur.Kernels[0].AllocsPerOp = 0     // fewer allocs: good
	cur.Kernels[1].WallNsPerSimSec = 1 // faster host: good
	regs, err := Diff(base, cur, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("improvements flagged as regressions: %v", regs)
	}
}

func TestDiffRejectsMismatchedSnapshots(t *testing.T) {
	base, cur := sample(), sample()
	cur.Schema = SchemaVersion + 1
	if _, err := Diff(base, cur, nil); err == nil {
		t.Fatal("schema mismatch not rejected")
	}
	cur = sample()
	cur.Quick = false
	if _, err := Diff(base, cur, nil); err == nil {
		t.Fatal("quick/full mismatch not rejected")
	}
	cur = sample()
	cur.Kernels = cur.Kernels[:1] // drop ring_flush
	if _, err := Diff(base, cur, nil); err == nil {
		t.Fatal("missing kernel not rejected")
	}
}

// A zero baseline value (e.g. allocs_per_op already at 0) cannot divide;
// the metric is skipped rather than spuriously flagged.
func TestDiffSkipsZeroBaseline(t *testing.T) {
	base, cur := sample(), sample()
	base.Kernels[0].AllocsPerOp = 0
	cur.Kernels[0].AllocsPerOp = 5
	regs, err := Diff(base, cur, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range regs {
		if r.Metric == "allocs_per_op" && r.Kernel == "call_rtt" {
			t.Fatalf("zero-baseline metric flagged: %v", r)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_0.json")
	b := sample()
	if err := Write(path, b); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != b.Schema || got.Quick != b.Quick || len(got.Kernels) != len(b.Kernels) {
		t.Fatalf("round trip mangled snapshot: %+v", got)
	}
	if k, ok := got.Kernel("ring_flush"); !ok || k.SimOps != 512 {
		t.Fatalf("kernel lookup after round trip: %+v ok=%v", k, ok)
	}
	// Committed baselines end in a newline so they diff cleanly.
	raw, _ := os.ReadFile(path)
	if len(raw) == 0 || raw[len(raw)-1] != '\n' {
		t.Fatal("written snapshot missing trailing newline")
	}
}

func TestReadRejectsForeignSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_0.json")
	if err := os.WriteFile(path, []byte(`{"schema": 99, "kernels": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("foreign schema accepted: %v", err)
	}
}

func TestTrajectoryAndNextPath(t *testing.T) {
	dir := t.TempDir()
	p, err := NextPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p) != "BENCH_0.json" {
		t.Fatalf("empty dir next = %s", p)
	}
	for _, name := range []string{"BENCH_0.json", "BENCH_2.json", "BENCH_10.json", "notes.md", "BENCH_x.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	traj, err := Trajectory(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj) != 3 || filepath.Base(traj[0]) != "BENCH_0.json" || filepath.Base(traj[2]) != "BENCH_10.json" {
		t.Fatalf("trajectory = %v", traj)
	}
	p, err = NextPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p) != "BENCH_11.json" {
		t.Fatalf("next after BENCH_10 = %s", p)
	}
}

// End to end at quick scale: every kernel runs, produces sane figures,
// and the simulated half reproduces exactly.
func TestMeasureAllQuickDeterministicSimHalf(t *testing.T) {
	a, err := MeasureAll(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Kernels) != len(Kernels()) {
		t.Fatalf("measured %d kernels, registry has %d", len(a.Kernels), len(Kernels()))
	}
	for _, k := range a.Kernels {
		if k.SimOps <= 0 || k.SimElapsedNS <= 0 || k.SimOpsPerSec <= 0 {
			t.Errorf("kernel %s: degenerate sim figures %+v", k.ID, k)
		}
		if k.WallNsPerSimSec <= 0 {
			t.Errorf("kernel %s: no wall time recorded", k.ID)
		}
	}
	// The per-call kernel must sit at the paper's 196 ns figure.
	if k, ok := a.Kernel("call_rtt"); !ok {
		t.Fatal("call_rtt missing")
	} else if perCall := float64(k.SimElapsedNS) / float64(k.SimOps); perCall < 150 || perCall > 206 {
		t.Errorf("call_rtt per-call sim time = %.1f ns, want ~196", perCall)
	}
	// Batching must beat the per-call path on simulated throughput.
	rf, _ := a.Kernel("ring_flush")
	cr, _ := a.Kernel("call_rtt")
	if rf.SimOpsPerSec <= cr.SimOpsPerSec {
		t.Errorf("ring_flush (%.3g ops/s) not faster than call_rtt (%.3g ops/s)", rf.SimOpsPerSec, cr.SimOpsPerSec)
	}
	b, err := MeasureAll(true)
	if err != nil {
		t.Fatal(err)
	}
	for i, ka := range a.Kernels {
		kb := b.Kernels[i]
		if ka.SimOps != kb.SimOps || ka.SimElapsedNS != kb.SimElapsedNS {
			t.Errorf("kernel %s sim half not deterministic: %d/%d vs %d/%d",
				ka.ID, ka.SimOps, ka.SimElapsedNS, kb.SimOps, kb.SimElapsedNS)
		}
	}
}
