package shm

import (
	"encoding/binary"
	"fmt"
)

// CallRing is the exit-less datapath's descriptor ring: a single-producer/
// single-consumer pair of queues laid out in one shared-memory window. The
// guest pushes call descriptors (submission queue) and pops completions
// (completion queue); the manager — or the gate-path drain running as
// manager code on the guest's own vCPU — does the converse. Completions
// are produced strictly in submission order, so the SPSC indices are the
// whole protocol: no sequence numbers, no locks in the data plane.
//
// Layout (all index words u64, 8-byte aligned):
//
//	0:  sqHead   (submission consumer cursor)
//	8:  sqTail   (submission producer cursor)
//	16: cqHead   (completion consumer cursor)
//	24: cqTail   (completion producer cursor)
//	32: slot count (power of two; SQ and CQ have the same capacity)
//	40: kicks    (doorbell counter: producer-side flush notifications)
//	48:            slots * 48 B submission descriptors {fn, args[4], trace}
//	48+slots*48:   slots * 24 B completions {ret, status, trace}
//
// Like every shm structure it operates through a Window, so the same ring
// is driven by a guest vCPU on one side (charging its clock, subject to
// its EPT contexts) and host-side manager code on the other.
//
// The data plane uses the classic SPSC cursor-caching optimisation
// (virtio and io_uring drivers do the same): each cursor has exactly one
// writer, so the owning instance keeps its own cursor in a register
// (never re-read) and caches the opposite cursor, refreshing it from
// shared memory only when the cached view reports full/empty. Ownership
// contract: PushDesc and Kick must come from one instance (the guest
// submitter), PopComp from one instance (the guest poller — in practice
// the same one). The consuming side — gate-path flush, manager poller,
// administrative failure — has several instances that take turns under
// the caller's drain lock, so it cannot own cursors across calls;
// consumers instead batch through a DrainTxn, which snapshots the
// cursors once per session and publishes once at close.
type CallRing struct {
	w     Window
	slots int

	// Producer-owned cursors (single writer: this instance).
	ownSQTail uint64
	ownCQHead uint64
	ownKicks  uint64
	// Lazily-refreshed views of the cursors owned by the other side.
	// Stale-low is safe: the producer over-estimates fullness and the
	// consumer over-estimates emptiness, and both re-read before
	// reporting full/empty.
	cSQHead uint64
	cCQTail uint64

	// Record scratch. Every push/pop serialises one record through a
	// byte buffer before crossing the Window interface; a stack local
	// would escape through that interface call and cost one heap
	// allocation per data-plane operation. The instance-level scratch is
	// safe for the same reason the cursor caches are: each CallRing
	// instance is driven by one goroutine at a time (producer ownership
	// contract, consumers serialised under the caller's drain lock), and
	// each buffer's use begins and ends within a single call.
	dbuf [descBytes]byte
	cbuf [compBytes]byte

	// txn is the reusable drain-session scratch handed out by BeginDrain.
	// At most one transaction per instance is live at a time — the same
	// serialisation contract that already governs consumers.
	txn DrainTxn
}

// Desc is one submitted operation: a manager-function ID plus the four
// register arguments a gate call would carry.
type Desc struct {
	// Fn is the manager function ID to invoke.
	Fn uint64
	// Args are the register arguments (RDI, RSI, RDX, RCX).
	Args [4]uint64
	// Trace is the causal trace ID stamped at Submit (0 = untraced). It
	// rides the descriptor through every drain side and is echoed into the
	// completion, so the flight recorder can link submit, drain, complete,
	// and poll events of one operation across batching and retries.
	Trace uint64
}

// Comp is one completed operation, in submission order.
type Comp struct {
	// Ret is the function result (the RAX a gate call would return).
	Ret uint64
	// Status is CompOK, CompErr, or CompBusy.
	Status uint64
	// Trace echoes the descriptor's causal trace ID (0 = untraced), so the
	// guest's poller can attribute the completion to the submit that caused
	// it even after busy bounce-backs reorder the retry queue.
	Trace uint64
}

// Completion status codes.
const (
	// CompOK marks a completion whose function returned without error.
	CompOK uint64 = 0
	// CompErr marks a completion whose function failed — including
	// descriptors failed administratively when their attachment was
	// revoked before they ran.
	CompErr uint64 = 1
	// CompBusy marks a completion refused for overload: the drain side
	// ran out of budget and bounced the descriptor back instead of
	// servicing it. The operation did not run; the guest may retry
	// after backing off (see core.RetryPolicy).
	CompBusy uint64 = 2
)

// Byte sizes of the on-ring records and header.
const (
	callRingHdr = 48
	descBytes   = 48 // fn + 4 args + trace
	compBytes   = 24 // ret + status + trace
)

// Header field offsets.
const (
	offSQHead = 0
	offSQTail = 8
	offCQHead = 16
	offCQTail = 24
	offSlots  = 32
	offKicks  = 40
)

// maxCallRingSlots bounds the geometry OpenCallRing will accept.
const maxCallRingSlots = 1 << 16

// CallRingBytes returns the window size a ring with the given slot count
// needs.
func CallRingBytes(slots int) int {
	return callRingHdr + slots*(descBytes+compBytes)
}

// InitCallRing formats a call ring in w. Geometry is recorded in the
// header; the other side attaches with OpenCallRing.
func InitCallRing(w Window, slots int) (*CallRing, error) {
	if slots <= 0 || slots&(slots-1) != 0 {
		return nil, fmt.Errorf("shm: call ring slots %d must be a positive power of two", slots)
	}
	if slots > maxCallRingSlots {
		return nil, fmt.Errorf("shm: call ring slots %d above cap %d", slots, maxCallRingSlots)
	}
	if need := CallRingBytes(slots); w.Size() < need {
		return nil, fmt.Errorf("shm: call ring needs %d bytes, window has %d", need, w.Size())
	}
	for _, off := range []int{offSQHead, offSQTail, offCQHead, offCQTail, offKicks} {
		if err := w.WriteU64(off, 0); err != nil {
			return nil, err
		}
	}
	if err := w.WriteU64(offSlots, uint64(slots)); err != nil {
		return nil, err
	}
	return &CallRing{w: w, slots: slots}, nil
}

// OpenCallRing attaches to a ring previously formatted with InitCallRing
// (the other side of the shared memory).
func OpenCallRing(w Window) (*CallRing, error) {
	slots, err := w.ReadU64(offSlots)
	if err != nil {
		return nil, err
	}
	if slots == 0 || slots&(slots-1) != 0 || slots > maxCallRingSlots {
		return nil, fmt.Errorf("shm: window does not contain a call ring (slots=%d)", slots)
	}
	r := &CallRing{w: w, slots: int(slots)}
	if need := CallRingBytes(r.slots); w.Size() < need {
		return nil, fmt.Errorf("shm: call ring header claims %d bytes, window has %d", need, w.Size())
	}
	// Seed the owned-cursor caches from the ring's current state (a
	// one-time cost at attach, not data-plane traffic).
	if r.ownSQTail, err = w.ReadU64(offSQTail); err != nil {
		return nil, err
	}
	if r.ownCQHead, err = w.ReadU64(offCQHead); err != nil {
		return nil, err
	}
	if r.ownKicks, err = w.ReadU64(offKicks); err != nil {
		return nil, err
	}
	r.cSQHead, _ = w.ReadU64(offSQHead)
	r.cCQTail, _ = w.ReadU64(offCQTail)
	return r, nil
}

// Slots returns the ring capacity (identical for SQ and CQ).
func (r *CallRing) Slots() int { return r.slots }

func (r *CallRing) descOff(index uint64) int {
	return callRingHdr + int(index%uint64(r.slots))*descBytes
}

func (r *CallRing) compOff(index uint64) int {
	return callRingHdr + r.slots*descBytes + int(index%uint64(r.slots))*compBytes
}

func (r *CallRing) pair(headOff, tailOff int) (head, tail uint64, err error) {
	if head, err = r.w.ReadU64(headOff); err != nil {
		return
	}
	tail, err = r.w.ReadU64(tailOff)
	return
}

// SubmitLen returns the number of submitted-but-not-drained descriptors.
func (r *CallRing) SubmitLen() (int, error) {
	head, tail, err := r.pair(offSQHead, offSQTail)
	return int(tail - head), err
}

// ProducerPending returns the number of submitted-but-not-drained
// descriptors as seen by the submitting instance: its own cached tail
// against a fresh read of the consumer cursor — half the memory traffic
// of SubmitLen. The refreshed head also updates the full-check cache.
func (r *CallRing) ProducerPending() (int, error) {
	head, err := r.w.ReadU64(offSQHead)
	if err != nil {
		return 0, err
	}
	r.cSQHead = head
	return int(r.ownSQTail - head), nil
}

// CompLen returns the number of completions awaiting the guest's poll.
func (r *CallRing) CompLen() (int, error) {
	head, tail, err := r.pair(offCQHead, offCQTail)
	return int(tail - head), err
}

// Submitted returns the lifetime descriptor count (the raw SQ tail).
func (r *CallRing) Submitted() (uint64, error) { return r.w.ReadU64(offSQTail) }

// Completed returns the lifetime completion count (the raw CQ tail).
func (r *CallRing) Completed() (uint64, error) { return r.w.ReadU64(offCQTail) }

// Kick bumps the doorbell counter: the producer's in-memory notification
// that descriptors await the poller. It never exits — the consumer reads
// the counter, nothing traps. The producer owns the counter, so this is
// a single store.
func (r *CallRing) Kick() error {
	if err := r.w.WriteU64(offKicks, r.ownKicks+1); err != nil {
		return err
	}
	r.ownKicks++
	return nil
}

// Kicks returns the lifetime doorbell count.
func (r *CallRing) Kicks() (uint64, error) { return r.w.ReadU64(offKicks) }

// PushDesc appends one descriptor to the submission queue. It reports
// false (without error) when the queue is full. The descriptor bytes are
// written before the tail is published, so an SPSC consumer that observes
// the new tail observes the whole descriptor (the index words are atomic
// in simulated physical memory, as on real hardware).
func (r *CallRing) PushDesc(d Desc) (bool, error) {
	if r.ownSQTail-r.cSQHead >= uint64(r.slots) {
		// Apparent full: refresh the cached consumer cursor before
		// giving up (the only time the producer touches it).
		head, err := r.w.ReadU64(offSQHead)
		if err != nil {
			return false, err
		}
		r.cSQHead = head
		if r.ownSQTail-r.cSQHead >= uint64(r.slots) {
			return false, nil
		}
	}
	buf := &r.dbuf
	binary.LittleEndian.PutUint64(buf[0:], d.Fn)
	for i, a := range d.Args {
		binary.LittleEndian.PutUint64(buf[8+8*i:], a)
	}
	binary.LittleEndian.PutUint64(buf[40:], d.Trace)
	if err := r.w.Write(r.descOff(r.ownSQTail), buf[:]); err != nil {
		return false, err
	}
	if err := r.w.WriteU64(offSQTail, r.ownSQTail+1); err != nil {
		return false, err
	}
	r.ownSQTail++
	return true, nil
}

// PopDesc removes the oldest descriptor from the submission queue
// (ok=false when empty). Only one consumer — the gate-path drain or the
// manager's poller, serialised by the caller — may pop at a time.
func (r *CallRing) PopDesc() (Desc, bool, error) {
	var d Desc
	head, tail, err := r.pair(offSQHead, offSQTail)
	if err != nil {
		return d, false, err
	}
	if head == tail {
		return d, false, nil
	}
	buf := &r.dbuf
	if err := r.w.Read(r.descOff(head), buf[:]); err != nil {
		return d, false, err
	}
	d.Fn = binary.LittleEndian.Uint64(buf[0:])
	for i := range d.Args {
		d.Args[i] = binary.LittleEndian.Uint64(buf[8+8*i:])
	}
	d.Trace = binary.LittleEndian.Uint64(buf[40:])
	return d, true, r.w.WriteU64(offSQHead, head+1)
}

// PushComp appends one completion. It reports false when the completion
// queue is full — the drain's backpressure signal: stop popping
// descriptors until the guest polls.
func (r *CallRing) PushComp(c Comp) (bool, error) {
	head, tail, err := r.pair(offCQHead, offCQTail)
	if err != nil {
		return false, err
	}
	if tail-head >= uint64(r.slots) {
		return false, nil
	}
	buf := &r.cbuf
	binary.LittleEndian.PutUint64(buf[0:], c.Ret)
	binary.LittleEndian.PutUint64(buf[8:], c.Status)
	binary.LittleEndian.PutUint64(buf[16:], c.Trace)
	if err := r.w.Write(r.compOff(tail), buf[:]); err != nil {
		return false, err
	}
	return true, r.w.WriteU64(offCQTail, tail+1)
}

// PopComp removes the oldest completion (ok=false when none are ready).
// It is the guest poller's cached-cursor fast path: the completion
// producer cursor is re-read only when the cached view says empty.
func (r *CallRing) PopComp() (Comp, bool, error) {
	var c Comp
	if r.ownCQHead == r.cCQTail {
		tail, err := r.w.ReadU64(offCQTail)
		if err != nil {
			return c, false, err
		}
		r.cCQTail = tail
		if r.ownCQHead == r.cCQTail {
			return c, false, nil
		}
	}
	buf := &r.cbuf
	if err := r.w.Read(r.compOff(r.ownCQHead), buf[:]); err != nil {
		return c, false, err
	}
	c.Ret = binary.LittleEndian.Uint64(buf[0:])
	c.Status = binary.LittleEndian.Uint64(buf[8:])
	c.Trace = binary.LittleEndian.Uint64(buf[16:])
	if err := r.w.WriteU64(offCQHead, r.ownCQHead+1); err != nil {
		return c, false, err
	}
	r.ownCQHead++
	return c, true, nil
}

// DrainTxn is a consumer-side batch session over a CallRing. The drain
// side of a ring has several CallRing instances taking turns under the
// caller's lock (the gate-path flush runs on the guest's own vCPU, the
// manager's poller and the administrative failure path on the host
// window), so no instance can own the consumer cursors across calls.
// BeginDrain instead snapshots all four cursors once, the per-descriptor
// Pop/Push operate on local state touching only the record bytes, and
// Close publishes the advanced cursors in one step.
//
// A transaction that is abandoned without Close — e.g. the vCPU dies
// mid-drain on an injected fault — publishes nothing: the whole batch
// stays in the submission queue as if never popped, and the
// administrative failure path completes it with CompErr later. Batches
// are thus transactional with respect to crashes.
type DrainTxn struct {
	r      *CallRing
	sqHead uint64
	sqTail uint64
	cqHead uint64
	cqTail uint64
	popped int
	pushed int
}

// BeginDrain opens a consumer batch session, snapshotting the ring
// cursors. The caller must hold whatever lock serialises consumers of
// this ring and must Close the transaction to publish its progress.
//
// The returned transaction is this instance's reusable scratch: the
// next BeginDrain on the same CallRing recycles it, so at most one
// transaction per instance may be live at a time. That is not a new
// restriction — consumers of a ring are already serialised under the
// caller's drain lock, and a transaction never outlives its drain
// session (an abandoned one is simply never Closed and publishes
// nothing; the recycling reset discards its local cursors).
func (r *CallRing) BeginDrain() (*DrainTxn, error) {
	t := &r.txn
	*t = DrainTxn{r: r}
	var err error
	if t.sqHead, err = r.w.ReadU64(offSQHead); err != nil {
		return nil, err
	}
	if t.sqTail, err = r.w.ReadU64(offSQTail); err != nil {
		return nil, err
	}
	if t.cqHead, err = r.w.ReadU64(offCQHead); err != nil {
		return nil, err
	}
	if t.cqTail, err = r.w.ReadU64(offCQTail); err != nil {
		return nil, err
	}
	return t, nil
}

// Pending returns the number of descriptors still unpopped in this
// transaction's snapshot.
func (t *DrainTxn) Pending() int { return int(t.sqTail - t.sqHead) }

// CQFree returns the completion-queue space left in this transaction's
// snapshot — the drain's backpressure bound: stop popping when it hits
// zero and let the guest poll.
func (t *DrainTxn) CQFree() int { return t.r.slots - int(t.cqTail-t.cqHead) }

// PopDesc removes the next descriptor within the transaction (ok=false
// when the snapshot is exhausted). Only the descriptor bytes are read;
// the cursor advances locally until Close.
func (t *DrainTxn) PopDesc() (Desc, bool, error) {
	var d Desc
	if t.sqHead == t.sqTail {
		return d, false, nil
	}
	buf := &t.r.dbuf
	if err := t.r.w.Read(t.r.descOff(t.sqHead), buf[:]); err != nil {
		return d, false, err
	}
	d.Fn = binary.LittleEndian.Uint64(buf[0:])
	for i := range d.Args {
		d.Args[i] = binary.LittleEndian.Uint64(buf[8+8*i:])
	}
	d.Trace = binary.LittleEndian.Uint64(buf[40:])
	t.sqHead++
	t.popped++
	return d, true, nil
}

// PushComp appends one completion within the transaction (ok=false when
// the snapshot's completion queue is full).
func (t *DrainTxn) PushComp(c Comp) (bool, error) {
	if t.CQFree() <= 0 {
		return false, nil
	}
	buf := &t.r.cbuf
	binary.LittleEndian.PutUint64(buf[0:], c.Ret)
	binary.LittleEndian.PutUint64(buf[8:], c.Status)
	binary.LittleEndian.PutUint64(buf[16:], c.Trace)
	if err := t.r.w.Write(t.r.compOff(t.cqTail), buf[:]); err != nil {
		return false, err
	}
	t.cqTail++
	t.pushed++
	return true, nil
}

// Close publishes the transaction's cursor advances — completion bytes
// before the completion tail, so the guest's poller observes whole
// records. A transaction that popped or pushed nothing writes nothing.
func (t *DrainTxn) Close() error {
	if t.pushed > 0 {
		if err := t.r.w.WriteU64(offCQTail, t.cqTail); err != nil {
			return err
		}
	}
	if t.popped > 0 {
		if err := t.r.w.WriteU64(offSQHead, t.sqHead); err != nil {
			return err
		}
	}
	return nil
}

// FailPending administratively completes queued descriptors with status,
// calling each (when non-nil) per failed descriptor so callers can log
// them. It stops when the submission queue empties or the completion
// queue fills — in the latter case descriptors stay queued, and the
// caller must fail again once the consumer polls completions away (see
// the dead-ring sweep in internal/core). Consumer-side: the caller must
// hold whatever lock serialises this ring's consumers. Returns how many
// descriptors were completed.
func (r *CallRing) FailPending(status uint64, each func(Desc)) (int, error) {
	txn, err := r.BeginDrain()
	if err != nil {
		return 0, err
	}
	n := 0
	for txn.CQFree() > 0 {
		d, ok, err := txn.PopDesc()
		if err != nil {
			return n, err
		}
		if !ok {
			break
		}
		// CQFree > 0 was just checked, so the push cannot refuse.
		if ok, err := txn.PushComp(Comp{Status: status, Trace: d.Trace}); err != nil || !ok {
			return n, err
		}
		if each != nil {
			each(d)
		}
		n++
	}
	return n, txn.Close()
}
