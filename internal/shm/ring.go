package shm

import (
	"fmt"
)

// Ring is a single-producer/single-consumer ring of fixed-size slots laid
// out in shared memory — the descriptor-ring shape every I/O backend in
// the paper's networking use case is built on.
//
// Layout (all u64 fields 8-byte aligned):
//
//	0:  head (next slot the consumer will read)
//	8:  tail (next slot the producer will write)
//	16: slot count
//	24: slot payload size
//	32: slots... each slot is 8 bytes of length header + payload bytes,
//	    rounded up to 8.
type Ring struct {
	w        Window
	slots    int
	slotSize int
}

const ringHdr = 32

// slotStride returns the on-disk footprint of one slot.
func slotStride(slotSize int) int { return 8 + (slotSize+7)&^7 }

// RingBytes returns the window size needed for a ring with the given
// geometry.
func RingBytes(slots, slotSize int) int { return ringHdr + slots*slotStride(slotSize) }

// InitRing formats a ring in w. The producer-consumer pair must agree on
// geometry; OpenRing re-derives it from the header.
func InitRing(w Window, slots, slotSize int) (*Ring, error) {
	if slots <= 0 || slots&(slots-1) != 0 {
		return nil, fmt.Errorf("shm: ring slots %d must be a positive power of two", slots)
	}
	if slotSize <= 0 {
		return nil, fmt.Errorf("shm: ring slot size %d must be positive", slotSize)
	}
	if need := RingBytes(slots, slotSize); w.Size() < need {
		return nil, fmt.Errorf("shm: ring needs %d bytes, window has %d", need, w.Size())
	}
	for off, v := range map[int]uint64{0: 0, 8: 0, 16: uint64(slots), 24: uint64(slotSize)} {
		if err := w.WriteU64(off, v); err != nil {
			return nil, err
		}
	}
	return &Ring{w: w, slots: slots, slotSize: slotSize}, nil
}

// OpenRing attaches to a ring previously formatted with InitRing (the
// other side of the shared memory).
func OpenRing(w Window) (*Ring, error) {
	slots, err := w.ReadU64(16)
	if err != nil {
		return nil, err
	}
	slotSize, err := w.ReadU64(24)
	if err != nil {
		return nil, err
	}
	if slots == 0 || slotSize == 0 || slots > 1<<20 || slotSize > 1<<20 {
		return nil, fmt.Errorf("shm: window does not contain a ring (slots=%d size=%d)", slots, slotSize)
	}
	r := &Ring{w: w, slots: int(slots), slotSize: int(slotSize)}
	if need := RingBytes(r.slots, r.slotSize); w.Size() < need {
		return nil, fmt.Errorf("shm: ring header claims %d bytes, window has %d", need, w.Size())
	}
	return r, nil
}

// Slots returns the ring capacity.
func (r *Ring) Slots() int { return r.slots }

// SlotSize returns the per-slot payload capacity.
func (r *Ring) SlotSize() int { return r.slotSize }

func (r *Ring) load() (head, tail uint64, err error) {
	if head, err = r.w.ReadU64(0); err != nil {
		return
	}
	tail, err = r.w.ReadU64(8)
	return
}

// Len returns the number of occupied slots.
func (r *Ring) Len() (int, error) {
	head, tail, err := r.load()
	if err != nil {
		return 0, err
	}
	return int(tail - head), nil
}

// Free returns the number of free slots.
func (r *Ring) Free() (int, error) {
	n, err := r.Len()
	if err != nil {
		return 0, err
	}
	return r.slots - n, nil
}

func (r *Ring) slotOff(index uint64) int {
	return ringHdr + int(index%uint64(r.slots))*slotStride(r.slotSize)
}

// Push appends one payload. It reports false (without error) when the
// ring is full.
func (r *Ring) Push(p []byte) (bool, error) {
	if len(p) > r.slotSize {
		return false, fmt.Errorf("shm: payload %d exceeds slot size %d", len(p), r.slotSize)
	}
	head, tail, err := r.load()
	if err != nil {
		return false, err
	}
	if tail-head >= uint64(r.slots) {
		return false, nil
	}
	off := r.slotOff(tail)
	if err := r.w.WriteU64(off, uint64(len(p))); err != nil {
		return false, err
	}
	if len(p) > 0 {
		if err := r.w.Write(off+8, p); err != nil {
			return false, err
		}
	}
	return true, r.w.WriteU64(8, tail+1)
}

// Pop removes the oldest payload into p (which must be at least slot-size
// long) and returns its length. It reports ok=false when the ring is
// empty.
func (r *Ring) Pop(p []byte) (n int, ok bool, err error) {
	head, tail, err := r.load()
	if err != nil {
		return 0, false, err
	}
	if head == tail {
		return 0, false, nil
	}
	off := r.slotOff(head)
	ln, err := r.w.ReadU64(off)
	if err != nil {
		return 0, false, err
	}
	if ln > uint64(r.slotSize) {
		return 0, false, fmt.Errorf("shm: corrupt ring slot length %d", ln)
	}
	if int(ln) > len(p) {
		return 0, false, fmt.Errorf("shm: buffer %d too small for payload %d", len(p), ln)
	}
	if ln > 0 {
		if err := r.w.Read(off+8, p[:ln]); err != nil {
			return 0, false, err
		}
	}
	if err := r.w.WriteU64(0, head+1); err != nil {
		return 0, false, err
	}
	return int(ln), true, nil
}

// PeekLen returns the length of the oldest payload without consuming it
// (ok=false when empty).
func (r *Ring) PeekLen() (int, bool, error) {
	head, tail, err := r.load()
	if err != nil {
		return 0, false, err
	}
	if head == tail {
		return 0, false, nil
	}
	ln, err := r.w.ReadU64(r.slotOff(head))
	return int(ln), true, err
}
