package shm

import (
	"bytes"
	"testing"
	"testing/quick"

	"github.com/elisa-go/elisa/internal/cpu"
	"github.com/elisa-go/elisa/internal/ept"
	"github.com/elisa-go/elisa/internal/hv"
	"github.com/elisa-go/elisa/internal/mem"
	"github.com/elisa-go/elisa/internal/simtime"
)

// hostFixture returns a window over a fresh host region.
func hostFixture(t *testing.T, pages int) (*hv.Hypervisor, *HostWindow) {
	t.Helper()
	h, err := hv.New(hv.Config{PhysBytes: 8 * 1024 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	r, err := h.AllocHostRegion(pages * mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewHostWindow(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	return h, w
}

func TestHostWindowRoundTrip(t *testing.T) {
	_, w := hostFixture(t, 2)
	if err := w.Write(100, []byte("windowed")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	if err := w.Read(100, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "windowed" {
		t.Fatalf("%q", got)
	}
	if err := w.WriteU64(8, 42); err != nil {
		t.Fatal(err)
	}
	v, _ := w.ReadU64(8)
	if v != 42 {
		t.Fatalf("u64 = %d", v)
	}
}

func TestGPAWindowGoesThroughEPT(t *testing.T) {
	h, err := hv.New(hv.Config{PhysBytes: 8 * 1024 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	vm, _ := h.CreateVM("g", 4*mem.PageSize)
	region, gpas, err := h.ShareDirect(mem.PageSize, ept.PermRW, vm)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewGPAWindow(vm.VCPU(), gpas[0], mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(0, []byte("via ept")); err != nil {
		t.Fatal(err)
	}
	// Host sees the same bytes.
	chk := make([]byte, 7)
	_ = region.Read(nil, 0, chk)
	if string(chk) != "via ept" {
		t.Fatalf("host view %q", chk)
	}
	// Bounds are window-relative.
	if err := w.Write(mem.PageSize-2, []byte("xxx")); err == nil {
		t.Fatal("overflow accepted")
	}
	if _, err := w.ReadU64(mem.PageSize); err == nil {
		t.Fatal("u64 past end accepted")
	}
}

func TestGPAWindowFaultsOutsideContext(t *testing.T) {
	h, _ := hv.New(hv.Config{PhysBytes: 8 * 1024 * 1024})
	vm, _ := h.CreateVM("g", 4*mem.PageSize)
	// Window over an unmapped GPA range: access = EPT violation = death.
	w, _ := NewGPAWindow(vm.VCPU(), 0x5000_0000, mem.PageSize)
	if err := w.Write(0, []byte("x")); err == nil {
		t.Fatal("write through hole succeeded")
	}
	var k *cpu.Killed
	if !vm.Dead() {
		t.Fatal("VM survived")
	}
	_ = k
}

func TestSubWindow(t *testing.T) {
	_, w := hostFixture(t, 2)
	sub, err := NewSubWindow(w, 256, 128)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Size() != 128 {
		t.Fatalf("size = %d", sub.Size())
	}
	if err := sub.Write(0, []byte("sub")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 3)
	_ = w.Read(256, got)
	if string(got) != "sub" {
		t.Fatalf("parent sees %q", got)
	}
	if err := sub.Write(126, []byte("abc")); err == nil {
		t.Fatal("sub overflow accepted")
	}
	if err := sub.WriteU64(8, 7); err != nil {
		t.Fatal(err)
	}
	v, _ := w.ReadU64(264)
	if v != 7 {
		t.Fatalf("u64 through sub = %d", v)
	}
	if _, err := NewSubWindow(w, -1, 10); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := NewSubWindow(w, 0, w.Size()+1); err == nil {
		t.Fatal("oversized sub accepted")
	}
}

func TestSpinlock(t *testing.T) {
	_, w := hostFixture(t, 1)
	cost := simtime.Default()
	l, err := NewSpinlock(w, 0, cost)
	if err != nil {
		t.Fatal(err)
	}
	clk := simtime.NewClock()
	ok, err := l.TryAcquire(clk, 1)
	if err != nil || !ok {
		t.Fatalf("first acquire: %v %v", ok, err)
	}
	if clk.Now() != simtime.Time(cost.LockAcquire) {
		t.Fatalf("acquire cost %d", clk.Now())
	}
	// Second owner contends.
	ok, err = l.TryAcquire(clk, 2)
	if err != nil || ok {
		t.Fatalf("contended acquire: %v %v", ok, err)
	}
	// Wrong owner cannot release.
	if err := l.Release(clk, 2); err == nil {
		t.Fatal("foreign release accepted")
	}
	if err := l.Release(clk, 1); err != nil {
		t.Fatal(err)
	}
	holder, _ := l.Holder()
	if holder != 0 {
		t.Fatalf("holder = %d", holder)
	}
	acq, cont := l.Stats()
	if acq != 1 || cont != 1 {
		t.Fatalf("stats = %d/%d", acq, cont)
	}
	if _, err := l.TryAcquire(clk, 0); err == nil {
		t.Fatal("owner 0 accepted")
	}
	if _, err := NewSpinlock(w, 3, cost); err == nil {
		t.Fatal("unaligned lock accepted")
	}
}

func TestSeqlock(t *testing.T) {
	_, w := hostFixture(t, 1)
	s, err := NewSeqlock(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Writer makes an even->odd->even transition; reader sees stable data.
	if err := s.WriteLocked(func() error { return w.Write(64, []byte("v1")) }); err != nil {
		t.Fatal(err)
	}
	var got [2]byte
	if err := s.ReadConsistent(func() error { return w.Read(64, got[:]) }); err != nil {
		t.Fatal(err)
	}
	if string(got[:]) != "v1" {
		t.Fatalf("read %q", got)
	}
	// A reader observing a torn write retries: simulate by leaving the
	// sequence odd.
	_ = w.WriteU64(0, 7) // odd
	if err := s.ReadConsistent(func() error { return nil }); err == nil {
		t.Fatal("reader did not starve on a stuck writer")
	}
	if err := s.WriteLocked(func() error { return nil }); err == nil {
		t.Fatal("nested/odd write accepted")
	}
}

func TestRingBasics(t *testing.T) {
	_, w := hostFixture(t, 4)
	r, err := InitRing(w, 8, 100)
	if err != nil {
		t.Fatal(err)
	}
	if r.Slots() != 8 || r.SlotSize() != 100 {
		t.Fatalf("geometry %d/%d", r.Slots(), r.SlotSize())
	}
	ok, err := r.Push([]byte("first"))
	if err != nil || !ok {
		t.Fatalf("push: %v %v", ok, err)
	}
	if n, _ := r.Len(); n != 1 {
		t.Fatalf("len = %d", n)
	}
	if n, ok, _ := r.PeekLen(); !ok || n != 5 {
		t.Fatalf("peek = %d %v", n, ok)
	}
	buf := make([]byte, 100)
	n, ok, err := r.Pop(buf)
	if err != nil || !ok || string(buf[:n]) != "first" {
		t.Fatalf("pop: %q %v %v", buf[:n], ok, err)
	}
	if _, ok, _ := r.Pop(buf); ok {
		t.Fatal("pop from empty succeeded")
	}
}

func TestRingFullAndWrap(t *testing.T) {
	_, w := hostFixture(t, 4)
	r, _ := InitRing(w, 4, 32)
	buf := make([]byte, 32)
	for round := 0; round < 5; round++ { // force wraparound
		for i := 0; i < 4; i++ {
			ok, err := r.Push([]byte{byte(round), byte(i)})
			if err != nil || !ok {
				t.Fatalf("push %d/%d: %v %v", round, i, ok, err)
			}
		}
		if ok, _ := r.Push([]byte("overflow")); ok {
			t.Fatal("push to full ring succeeded")
		}
		for i := 0; i < 4; i++ {
			n, ok, err := r.Pop(buf)
			if err != nil || !ok || n != 2 || buf[0] != byte(round) || buf[1] != byte(i) {
				t.Fatalf("pop %d/%d: % x %v %v", round, i, buf[:n], ok, err)
			}
		}
	}
}

func TestRingValidation(t *testing.T) {
	_, w := hostFixture(t, 4)
	if _, err := InitRing(w, 3, 32); err == nil {
		t.Error("non-power-of-two slots accepted")
	}
	if _, err := InitRing(w, 4, 0); err == nil {
		t.Error("zero slot size accepted")
	}
	if _, err := InitRing(w, 1024, 4096); err == nil {
		t.Error("ring larger than window accepted")
	}
	r, _ := InitRing(w, 4, 16)
	if _, err := r.Push(make([]byte, 17)); err == nil {
		t.Error("oversized payload accepted")
	}
	if _, _, err := r.Pop(make([]byte, 4)); err != nil {
		// empty ring: ok=false, no error
		t.Errorf("empty pop error: %v", err)
	}
}

func TestRingOpenFromOtherSide(t *testing.T) {
	// Producer formats the ring via the host window; consumer opens the
	// same memory through a guest GPA window: the cross-context case.
	h, err := hv.New(hv.Config{PhysBytes: 8 * 1024 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	vm, _ := h.CreateVM("g", 4*mem.PageSize)
	region, gpas, _ := h.ShareDirect(mem.PageSize, ept.PermRW, vm)
	hw, _ := NewHostWindow(region, nil)
	prod, err := InitRing(hw, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = prod.Push([]byte("ping"))

	gw, _ := NewGPAWindow(vm.VCPU(), gpas[0], mem.PageSize)
	cons, err := OpenRing(gw)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, ok, err := cons.Pop(buf)
	if err != nil || !ok || string(buf[:n]) != "ping" {
		t.Fatalf("cross-context pop: %q %v %v", buf[:n], ok, err)
	}
	// And the reverse direction.
	_, _ = cons.Push([]byte("pong"))
	n, ok, _ = prod.Pop(buf)
	if !ok || string(buf[:n]) != "pong" {
		t.Fatalf("reverse pop: %q %v", buf[:n], ok)
	}
}

func TestOpenRingRejectsGarbage(t *testing.T) {
	_, w := hostFixture(t, 1)
	if _, err := OpenRing(w); err == nil {
		t.Fatal("opened a ring in zeroed memory")
	}
}

// Property: any sequence of pushes and pops behaves like a FIFO queue.
func TestRingFIFOProperty(t *testing.T) {
	_, w := hostFixture(t, 8)
	r, _ := InitRing(w, 16, 64)
	var model [][]byte
	buf := make([]byte, 64)
	f := func(ops []byte) bool {
		for _, op := range ops {
			if op%2 == 0 { // push
				payload := []byte{op, op + 1, op + 2}
				ok, err := r.Push(payload)
				if err != nil {
					return false
				}
				if ok {
					model = append(model, append([]byte(nil), payload...))
				} else if len(model) != 16 {
					return false // full only when model full
				}
			} else { // pop
				n, ok, err := r.Pop(buf)
				if err != nil {
					return false
				}
				if !ok {
					if len(model) != 0 {
						return false
					}
					continue
				}
				if len(model) == 0 || !bytes.Equal(buf[:n], model[0]) {
					return false
				}
				model = model[1:]
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
