package shm

import (
	"fmt"

	"github.com/elisa-go/elisa/internal/simtime"
)

// Spinlock is a word in shared memory. In the simulation each simulated
// operation sequence is logically atomic (one vCPU runs at a time), so the
// lock's job is bookkeeping and *cost accounting*: experiments use the
// acquire/release costs plus hold times to model serialisation across VMs
// (which is what flattens the paper's PUT scaling curve).
type Spinlock struct {
	w    Window
	off  int
	cost simtime.CostModel

	acquisitions uint64
	contended    uint64
}

// NewSpinlock places a lock at an 8-byte-aligned offset in w. The word
// must be zero-initialised (unlocked).
func NewSpinlock(w Window, off int, cost simtime.CostModel) (*Spinlock, error) {
	if w == nil || off < 0 || off%8 != 0 || off+8 > w.Size() {
		return nil, fmt.Errorf("shm: invalid spinlock placement %d", off)
	}
	return &Spinlock{w: w, off: off, cost: cost}, nil
}

// TryAcquire attempts the lock for owner (a non-zero tag, e.g. VM id + 1).
// It reports whether the lock was taken. A held lock counts contention.
func (l *Spinlock) TryAcquire(charge *simtime.Clock, owner uint64) (bool, error) {
	if owner == 0 {
		return false, fmt.Errorf("shm: lock owner tag must be non-zero")
	}
	if charge != nil {
		charge.Advance(l.cost.LockAcquire)
	}
	cur, err := l.w.ReadU64(l.off)
	if err != nil {
		return false, err
	}
	if cur != 0 {
		l.contended++
		return false, nil
	}
	if err := l.w.WriteU64(l.off, owner); err != nil {
		return false, err
	}
	l.acquisitions++
	return true, nil
}

// Release drops the lock; owner must match the holder.
func (l *Spinlock) Release(charge *simtime.Clock, owner uint64) error {
	cur, err := l.w.ReadU64(l.off)
	if err != nil {
		return err
	}
	if cur != owner {
		return fmt.Errorf("shm: release by %d but lock held by %d", owner, cur)
	}
	if charge != nil {
		charge.Advance(l.cost.LockRelease)
	}
	return l.w.WriteU64(l.off, 0)
}

// Holder returns the current owner tag (0 = free).
func (l *Spinlock) Holder() (uint64, error) { return l.w.ReadU64(l.off) }

// Stats reports acquisitions and contended attempts.
func (l *Spinlock) Stats() (acquired, contended uint64) {
	return l.acquisitions, l.contended
}

// Seqlock is a sequence lock: writers make the counter odd while mutating;
// readers retry if they observe an odd or changed counter. GET-heavy
// workloads (the paper's KV store) use it so reads scale without
// serialising.
type Seqlock struct {
	w   Window
	off int
}

// NewSeqlock places a seqlock at an 8-byte-aligned offset in w.
func NewSeqlock(w Window, off int) (*Seqlock, error) {
	if w == nil || off < 0 || off%8 != 0 || off+8 > w.Size() {
		return nil, fmt.Errorf("shm: invalid seqlock placement %d", off)
	}
	return &Seqlock{w: w, off: off}, nil
}

// WriteLocked runs fn with the sequence held odd.
func (s *Seqlock) WriteLocked(fn func() error) error {
	seq, err := s.w.ReadU64(s.off)
	if err != nil {
		return err
	}
	if seq%2 == 1 {
		return fmt.Errorf("shm: nested seqlock write (seq %d)", seq)
	}
	if err := s.w.WriteU64(s.off, seq+1); err != nil {
		return err
	}
	fnErr := fn()
	if err := s.w.WriteU64(s.off, seq+2); err != nil {
		return err
	}
	return fnErr
}

// ReadConsistent runs fn, retrying until it observes a stable even
// sequence. The retry bound exists only to convert a stuck writer into a
// diagnosable error.
func (s *Seqlock) ReadConsistent(fn func() error) error {
	for attempt := 0; attempt < 64; attempt++ {
		before, err := s.w.ReadU64(s.off)
		if err != nil {
			return err
		}
		if before%2 == 1 {
			continue
		}
		if err := fn(); err != nil {
			return err
		}
		after, err := s.w.ReadU64(s.off)
		if err != nil {
			return err
		}
		if after == before {
			return nil
		}
	}
	return fmt.Errorf("shm: seqlock read starved")
}
