// Package shm provides data structures laid out in shared simulated
// memory: byte windows, spinlocks, seqlocks and single-producer/
// single-consumer rings. Everything operates through a Window, so the same
// structure can be driven by a guest vCPU (through the active EPT context,
// paying simulated costs and subject to isolation) or by host-side code
// (through a hv.HostRegion) — which is exactly the situation in the paper:
// the same ring is touched by a guest on one side and the host or manager
// code on the other.
package shm

import (
	"fmt"

	"github.com/elisa-go/elisa/internal/cpu"
	"github.com/elisa-go/elisa/internal/hv"
	"github.com/elisa-go/elisa/internal/mem"
	"github.com/elisa-go/elisa/internal/simtime"
)

// Window is a bounded view of shared memory.
type Window interface {
	// Size returns the window length in bytes.
	Size() int
	// Read copies len(p) bytes at off into p.
	Read(off int, p []byte) error
	// Write copies p into the window at off.
	Write(off int, p []byte) error
	// ReadU64 loads an 8-byte-aligned word.
	ReadU64(off int) (uint64, error)
	// WriteU64 stores an 8-byte-aligned word.
	WriteU64(off int, v uint64) error
}

// GPAWindow is a guest-side window: all accesses go through the vCPU's
// active EPT context.
type GPAWindow struct {
	v    *cpu.VCPU
	base mem.GPA
	size int
}

// NewGPAWindow wraps [base, base+size) as seen by v.
func NewGPAWindow(v *cpu.VCPU, base mem.GPA, size int) (*GPAWindow, error) {
	if v == nil || size <= 0 {
		return nil, fmt.Errorf("shm: invalid GPA window (size %d)", size)
	}
	return &GPAWindow{v: v, base: base, size: size}, nil
}

// Size implements Window.
func (w *GPAWindow) Size() int { return w.size }

func (w *GPAWindow) check(off, n int) error {
	if off < 0 || n < 0 || off+n > w.size {
		return fmt.Errorf("shm: access [%d,+%d) outside window size %d", off, n, w.size)
	}
	return nil
}

// Read implements Window.
func (w *GPAWindow) Read(off int, p []byte) error {
	if err := w.check(off, len(p)); err != nil {
		return err
	}
	return w.v.ReadGPA(w.base+mem.GPA(off), p)
}

// Write implements Window.
func (w *GPAWindow) Write(off int, p []byte) error {
	if err := w.check(off, len(p)); err != nil {
		return err
	}
	return w.v.WriteGPA(w.base+mem.GPA(off), p)
}

// ReadU64 implements Window.
func (w *GPAWindow) ReadU64(off int) (uint64, error) {
	if err := w.check(off, 8); err != nil {
		return 0, err
	}
	return w.v.ReadU64GPA(w.base + mem.GPA(off))
}

// WriteU64 implements Window.
func (w *GPAWindow) WriteU64(off int, v uint64) error {
	if err := w.check(off, 8); err != nil {
		return err
	}
	return w.v.WriteU64GPA(w.base+mem.GPA(off), v)
}

// HostWindow is a host-side window over a HostRegion; costs are charged to
// the supplied clock (the simulated core doing the host work).
type HostWindow struct {
	r   *hv.HostRegion
	clk *simtime.Clock
}

// NewHostWindow wraps a host region. clk may be nil for free inspection in
// tests.
func NewHostWindow(r *hv.HostRegion, clk *simtime.Clock) (*HostWindow, error) {
	if r == nil {
		return nil, fmt.Errorf("shm: nil host region")
	}
	return &HostWindow{r: r, clk: clk}, nil
}

// Size implements Window.
func (w *HostWindow) Size() int { return w.r.Size() }

// Read implements Window.
func (w *HostWindow) Read(off int, p []byte) error { return w.r.Read(w.clk, off, p) }

// Write implements Window.
func (w *HostWindow) Write(off int, p []byte) error { return w.r.Write(w.clk, off, p) }

// ReadU64 implements Window.
func (w *HostWindow) ReadU64(off int) (uint64, error) { return w.r.ReadU64(w.clk, off) }

// WriteU64 implements Window.
func (w *HostWindow) WriteU64(off int, v uint64) error { return w.r.WriteU64(w.clk, off, v) }

// SubWindow restricts a window to [off, off+size).
type SubWindow struct {
	w    Window
	off  int
	size int
}

// NewSubWindow carves [off, off+size) out of w.
func NewSubWindow(w Window, off, size int) (*SubWindow, error) {
	if w == nil || off < 0 || size <= 0 || off+size > w.Size() {
		return nil, fmt.Errorf("shm: sub-window [%d,+%d) outside parent", off, size)
	}
	return &SubWindow{w: w, off: off, size: size}, nil
}

// Size implements Window.
func (s *SubWindow) Size() int { return s.size }

func (s *SubWindow) check(off, n int) error {
	if off < 0 || n < 0 || off+n > s.size {
		return fmt.Errorf("shm: access [%d,+%d) outside sub-window size %d", off, n, s.size)
	}
	return nil
}

// Read implements Window.
func (s *SubWindow) Read(off int, p []byte) error {
	if err := s.check(off, len(p)); err != nil {
		return err
	}
	return s.w.Read(s.off+off, p)
}

// Write implements Window.
func (s *SubWindow) Write(off int, p []byte) error {
	if err := s.check(off, len(p)); err != nil {
		return err
	}
	return s.w.Write(s.off+off, p)
}

// ReadU64 implements Window.
func (s *SubWindow) ReadU64(off int) (uint64, error) {
	if err := s.check(off, 8); err != nil {
		return 0, err
	}
	return s.w.ReadU64(s.off + off)
}

// WriteU64 implements Window.
func (s *SubWindow) WriteU64(off int, v uint64) error {
	if err := s.check(off, 8); err != nil {
		return err
	}
	return s.w.WriteU64(s.off+off, v)
}

// Charger is implemented by windows that can account simulated time for
// work that is not a raw byte move (hash computation, cache-missing
// probes). Each Window implementation charges the clock of whoever is
// doing the access.
type Charger interface {
	Charge(d simtime.Duration)
}

// Charge implements Charger: guest-side work lands on the vCPU's clock.
func (w *GPAWindow) Charge(d simtime.Duration) { w.v.Charge(d) }

// Charge implements Charger: host-side work lands on the servicing clock
// (nil clock = free, test-only inspection).
func (w *HostWindow) Charge(d simtime.Duration) {
	if w.clk != nil {
		w.clk.Advance(d)
	}
}

// Charge implements Charger by delegating to the parent window.
func (s *SubWindow) Charge(d simtime.Duration) {
	if c, ok := s.w.(Charger); ok {
		c.Charge(d)
	}
}

// ChargeTo charges d to w if it supports accounting; no-op otherwise.
func ChargeTo(w Window, d simtime.Duration) {
	if c, ok := w.(Charger); ok {
		c.Charge(d)
	}
}
