// Package simtime provides the simulated-time foundation of the ELISA
// reproduction: integer-nanosecond clocks and the calibrated cost model
// every other package charges against.
//
// Nothing in this repository measures wall-clock time. Every "instruction"
// a simulated vCPU executes advances a Clock by a deterministic number of
// simulated nanoseconds taken from a CostModel, so reruns are bit-identical
// and throughput/latency results are pure functions of the model.
package simtime

import "fmt"

// Duration is a span of simulated time in nanoseconds.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// String renders the duration with an adaptive unit, e.g. "196ns", "1.234us".
func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.3fus", float64(d)/float64(Microsecond))
	case d < Second:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", float64(d)/float64(Second))
	}
}

// Seconds converts the duration to floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Time is an instant on a simulated clock, in nanoseconds since the
// simulation epoch.
type Time int64

// Add returns the instant d later than t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Clock is a monotonically advancing simulated clock. Each simulated vCPU
// owns one Clock; experiment harnesses read the clocks to convert operation
// counts into throughput.
//
// Clock is not safe for concurrent use; each simulated execution context is
// single-threaded by construction.
type Clock struct {
	now Time
}

// NewClock returns a clock positioned at the simulation epoch.
func NewClock() *Clock { return &Clock{} }

// Now reports the current simulated instant.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d. Advancing by a negative duration
// panics: simulated time, like the real thing, only moves forward.
func (c *Clock) Advance(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("simtime: Advance by negative duration %d", d))
	}
	c.now += Time(d)
}

// AdvanceTo moves the clock forward to instant t. It is a no-op if the
// clock is already at or past t; this is the rendezvous primitive used when
// two simulated agents synchronise (e.g. a packet arriving at a queue).
func (c *Clock) AdvanceTo(t Time) {
	if t > c.now {
		c.now = t
	}
}

// Elapsed reports the time elapsed since instant start.
func (c *Clock) Elapsed(start Time) Duration { return c.now.Sub(start) }
