package simtime

// CostModel holds every simulated-time constant used by the reproduction.
// The defaults are calibrated so the microbenchmarks land on the paper's
// Table 2 ("Context Round-trip Time": ELISA 196 ns, VMCALL 699 ns); all
// higher-level experiments inherit that asymmetry, which is what makes the
// relative shapes of the paper's figures come out.
//
// Experiments compare schemes under one shared CostModel, so only relative
// numbers are meaningful — see EXPERIMENTS.md.
type CostModel struct {
	// VM exit / entry: the two halves of a VMCALL hypercall round trip.
	// VMExit + VMEntry + HypercallDispatch = 699 ns, the paper's measured
	// VMCALL round trip.
	VMExit  Duration // guest -> host transition (exit reason decode included)
	VMEntry Duration // host -> guest transition (VMCS load, resume)

	// VMFunc is one execution of the VMFUNC instruction with leaf 0
	// (EPTP switching), including its microcoded EPTP-list read. The
	// ELISA call path executes it four times (default->gate->sub on the
	// way in, sub->gate->default on the way out); with two gate-code
	// traversals and six gate-page instruction fetches the round trip is
	// 4*VMFunc + 2*GateCode + 6*Instruction = 196 ns, the paper's
	// measured ELISA round trip.
	VMFunc Duration

	// GateCode is one traversal of the gate trampoline: register save or
	// restore, stack switch, and the EPTP-list index check, per direction.
	GateCode Duration

	// Instruction is the cost of one generic ALU-class simulated
	// instruction (compare, add, branch).
	Instruction Duration

	// CacheLine is the cost of moving one 64-byte cache line
	// (~64 GB/s single-core copy bandwidth).
	CacheLine Duration

	// MemAccess is one uncached word-sized load/store to simulated
	// physical memory (used for descriptor and pointer chasing costs).
	MemAccess Duration

	// TLBMiss is a guest-physical page walk after a TLB miss
	// (4 EPT levels of the two-dimensional walk, amortised).
	TLBMiss Duration

	// DRAMAccess is the latency of one cache-missing random access to
	// shared data (pointer-chasing through a hash table lives here, on
	// top of the bandwidth-style CacheLine cost).
	DRAMAccess Duration

	// LockAcquire / LockRelease are the uncontended costs of a shared
	// in-memory spinlock (atomic RMW + fence).
	LockAcquire Duration
	LockRelease Duration

	// HypercallDispatch is host-side work to route a hypercall to its
	// handler (on top of VMExit/VMEntry).
	HypercallDispatch Duration

	// IRQInject is the cost of injecting a virtual interrupt on the next
	// entry (used by vhost-net completion notification).
	IRQInject Duration

	// KickDoorbell is a PIO/MMIO doorbell write that traps to the host
	// (virtio kick); it costs a full exit on top of this decode overhead.
	KickDoorbell Duration

	// NICLineRateBps is the physical NIC line rate in bits per second
	// (the paper's HyperNF testbed is 10 GbE: 14.88 Mpps at 64 B frames).
	NICLineRateBps int64

	// NICFrameOverhead is the per-frame on-wire overhead in bytes
	// (preamble 7 + SFD 1 + IFG 12 = 20).
	NICFrameOverhead int

	// NICPerDescriptor is the NIC-side cost of consuming/producing one
	// DMA descriptor (device model processing).
	NICPerDescriptor Duration

	// SRIOVSwitchPerPacket is the embedded-switch cost an SR-IOV NIC pays
	// to hairpin a packet between two VFs (VM-to-VM traffic must traverse
	// the adapter).
	SRIOVSwitchPerPacket Duration
}

// Default returns the calibrated cost model. See DESIGN.md §5 for the
// derivation of each constant.
func Default() CostModel {
	return CostModel{
		VMExit:               380,
		VMEntry:              294,
		VMFunc:               40,
		GateCode:             15,
		Instruction:          1,
		CacheLine:            1,
		MemAccess:            4,
		TLBMiss:              20,
		DRAMAccess:           120,
		LockAcquire:          15,
		LockRelease:          8,
		HypercallDispatch:    25,
		IRQInject:            120,
		KickDoorbell:         30,
		NICLineRateBps:       10_000_000_000,
		NICFrameOverhead:     20,
		NICPerDescriptor:     10,
		SRIOVSwitchPerPacket: 35,
	}
}

// VMCallRoundTrip is the cost of an empty hypercall: exit, host dispatch,
// entry — 699 ns with the default model, the paper's Table 2 number.
func (m CostModel) VMCallRoundTrip() Duration {
	return m.VMExit + m.VMEntry + m.HypercallDispatch
}

// ELISARoundTrip is the architectural cost of an empty ELISA call: two
// EPTP switches, one gate traversal and three gate-page instruction
// fetches in each direction — 196 ns with the default model, the paper's
// Table 2 number. Package core's call path charges exactly these pieces.
func (m CostModel) ELISARoundTrip() Duration {
	return 4*m.VMFunc + 2*m.GateCode + 6*m.Instruction
}

// CopyCost is the simulated cost of copying n bytes (whole cache lines).
func (m CostModel) CopyCost(n int) Duration {
	if n <= 0 {
		return 0
	}
	lines := (n + 63) / 64
	return Duration(lines) * m.CacheLine
}

// NICWireTime is the serialisation delay of one frame of `size` payload
// bytes on the physical wire, including per-frame overhead. This is the
// line-rate bound: 64-byte frames on 10 GbE take 67.2 ns => 14.88 Mpps.
func (m CostModel) NICWireTime(size int) Duration {
	bits := int64(size+m.NICFrameOverhead) * 8
	// ns = bits / (bps) * 1e9, computed without overflow for sane sizes.
	return Duration(bits * 1_000_000_000 / m.NICLineRateBps)
}
