package simtime

import (
	"testing"
	"testing/quick"
)

func TestClockStartsAtEpoch(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %d, want 0", c.Now())
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	c.Advance(100)
	c.Advance(23)
	if got := c.Now(); got != 123 {
		t.Fatalf("Now() = %d, want 123", got)
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewClock().Advance(-1)
}

func TestClockAdvanceTo(t *testing.T) {
	c := NewClock()
	c.Advance(50)
	c.AdvanceTo(40) // no-op: already past
	if c.Now() != 50 {
		t.Fatalf("AdvanceTo backwards moved clock to %d", c.Now())
	}
	c.AdvanceTo(80)
	if c.Now() != 80 {
		t.Fatalf("AdvanceTo(80) left clock at %d", c.Now())
	}
}

func TestClockElapsed(t *testing.T) {
	c := NewClock()
	start := c.Now()
	c.Advance(196)
	if d := c.Elapsed(start); d != 196 {
		t.Fatalf("Elapsed = %v, want 196", d)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{196, "196ns"},
		{699, "699ns"},
		{1500, "1.500us"},
		{2_500_000, "2.500ms"},
		{3_000_000_000, "3.000s"},
		{-5, "-5ns"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestDurationSeconds(t *testing.T) {
	if s := Duration(1_500_000_000).Seconds(); s != 1.5 {
		t.Fatalf("Seconds = %v, want 1.5", s)
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(100)
	t1 := t0.Add(50)
	if t1 != 150 {
		t.Fatalf("Add: got %d", t1)
	}
	if d := t1.Sub(t0); d != 50 {
		t.Fatalf("Sub: got %d", d)
	}
}

// The two headline calibration targets from the paper's Table 2.
func TestDefaultModelMatchesPaperTable2(t *testing.T) {
	m := Default()
	if got := m.VMCallRoundTrip(); got != 699 {
		t.Errorf("VMCALL round trip = %v, want 699ns (paper Table 2)", got)
	}
	if got := m.ELISARoundTrip(); got != 196 {
		t.Errorf("ELISA round trip = %v, want 196ns (paper Table 2)", got)
	}
	ratio := float64(m.VMCallRoundTrip()) / float64(m.ELISARoundTrip())
	if ratio < 3.4 || ratio > 3.7 {
		t.Errorf("VMCALL/ELISA ratio = %.2f, paper reports 3.5x", ratio)
	}
}

func TestCopyCostWholeLines(t *testing.T) {
	m := Default()
	cases := []struct {
		n    int
		want Duration
	}{
		{0, 0}, {-4, 0}, {1, 1}, {64, 1}, {65, 2}, {1472, 23},
	}
	for _, c := range cases {
		if got := m.CopyCost(c.n); got != c.want {
			t.Errorf("CopyCost(%d) = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestNICWireTime64B(t *testing.T) {
	m := Default()
	// 64B + 20B overhead = 672 bits => 67.2ns on 10GbE; integer math
	// truncates to 67ns => ~14.9 Mpps, the classic 64B line rate.
	got := m.NICWireTime(64)
	if got != 67 {
		t.Fatalf("NICWireTime(64) = %v, want 67ns", got)
	}
	pps := 1e9 / float64(got)
	if pps < 14.5e6 || pps > 15.2e6 {
		t.Fatalf("64B line rate = %.2f Mpps, want ~14.88", pps/1e6)
	}
}

func TestNICWireTimeMonotonic(t *testing.T) {
	m := Default()
	f := func(a, b uint16) bool {
		x, y := int(a%1500)+1, int(b%1500)+1
		if x > y {
			x, y = y, x
		}
		return m.NICWireTime(x) <= m.NICWireTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: clock advancement is associative — advancing by a then b equals
// advancing by a+b, for non-negative spans.
func TestClockAdvanceAssociative(t *testing.T) {
	f := func(a, b uint32) bool {
		c1, c2 := NewClock(), NewClock()
		c1.Advance(Duration(a))
		c1.Advance(Duration(b))
		c2.Advance(Duration(a) + Duration(b))
		return c1.Now() == c2.Now()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
