// Package stats provides the measurement plumbing of the benchmark
// harness: log-bucketed histograms with percentile queries, throughput
// helpers, and text renderers for the tables and figure-series the
// experiments print.
package stats

import (
	"fmt"
	"math"
	"sort"

	"github.com/elisa-go/elisa/internal/simtime"
)

// Histogram is a log-bucketed latency histogram (HDR-style): values are
// bucketed with ~4.6% relative error at the default resolution (16
// sub-buckets per octave), which is plenty for p50/p99 comparisons while
// staying allocation-free per record.
type Histogram struct {
	buckets map[int]int64
	sub     int // sub-buckets per octave (the bucket layout)
	count   int64
	sum     int64
	min     int64
	max     int64
}

const defaultSubBuckets = 16 // per power of two

// NewHistogram returns an empty histogram at the default resolution.
func NewHistogram() *Histogram {
	return NewHistogramRes(defaultSubBuckets)
}

// NewHistogramRes returns an empty histogram with sub sub-buckets per
// octave (minimum 1). Histograms with different resolutions have
// incompatible bucket layouts; Merge rebuckets across them (see Merge).
func NewHistogramRes(sub int) *Histogram {
	if sub < 1 {
		sub = 1
	}
	return &Histogram{buckets: make(map[int]int64), sub: sub, min: math.MaxInt64}
}

// Resolution returns the histogram's sub-buckets per octave.
func (h *Histogram) Resolution() int { return h.sub }

// bucketOf maps a value to its bucket index in h's layout.
func (h *Histogram) bucketOf(v int64) int {
	sub := int64(h.sub)
	if v < sub {
		return int(v) // exact for tiny values
	}
	exp := 63 - int64(leadingZeros(uint64(v)))
	// Position within the octave, quantised to sub slots.
	frac := (v - (1 << exp)) * sub >> exp
	return int(exp)*h.sub + int(frac)
}

// bucketLow returns the lower bound of a bucket (its representative
// value) in h's layout.
func (h *Histogram) bucketLow(b int) int64 {
	if b < h.sub {
		return int64(b)
	}
	exp := b / h.sub
	frac := int64(b % h.sub)
	return (1 << exp) + frac<<exp/int64(h.sub)
}

func leadingZeros(v uint64) int {
	n := 0
	for i := 63; i >= 0; i-- {
		if v&(1<<uint(i)) != 0 {
			return n
		}
		n++
	}
	return 64
}

// Record adds one observation (negative values are clamped to zero).
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[h.bucketOf(v)]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// RecordDuration adds one simulated-duration observation.
func (h *Histogram) RecordDuration(d simtime.Duration) { h.Record(int64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the exact sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the arithmetic mean, or 0 if empty.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest observation, or 0 if empty.
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation.
func (h *Histogram) Max() int64 { return h.max }

// Percentile returns the value at quantile q in [0,1] (e.g. 0.99 for p99).
// The result is the representative (lower-bound) value of the bucket
// containing the quantile.
func (h *Histogram) Percentile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	keys := make([]int, 0, len(h.buckets))
	for k := range h.buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var seen int64
	for _, k := range keys {
		seen += h.buckets[k]
		if seen >= target {
			return h.bucketLow(k)
		}
	}
	return h.max
}

// Merge folds other's observations into h. When the two histograms share
// a bucket layout the merge is bucket-wise, so the merged percentiles
// match what recording every sample into h would have given. Layouts
// with different resolutions used to be merged bucket-wise too, silently
// corrupting counts (bucket index i means different values at different
// resolutions); now each of other's buckets is rebucketed through its
// representative value into h's layout instead. A nil or empty other is
// a no-op. The per-guest and per-attachment views of the observability
// layer are built by merging per-function histograms.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.count == 0 {
		return
	}
	if other.sub == h.sub {
		for b, n := range other.buckets {
			h.buckets[b] += n
		}
	} else {
		for b, n := range other.buckets {
			h.buckets[h.bucketOf(other.bucketLow(b))] += n
		}
	}
	h.count += other.count
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Clone returns an independent copy of the histogram, preserving its
// bucket layout.
func (h *Histogram) Clone() *Histogram {
	c := NewHistogramRes(h.sub)
	c.Merge(h)
	return c
}

// Reset discards every observation, returning the histogram to its
// freshly-constructed state (the backing bucket map is retained).
func (h *Histogram) Reset() {
	clear(h.buckets)
	h.count = 0
	h.sum = 0
	h.min = math.MaxInt64
	h.max = 0
}

// String summarises the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%d p99=%d max=%d",
		h.count, h.Mean(), h.Percentile(0.50), h.Percentile(0.99), h.max)
}

// Throughput converts an operation count over a simulated span into
// operations per second.
func Throughput(ops int64, elapsed simtime.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(ops) / elapsed.Seconds()
}
