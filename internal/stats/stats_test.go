package stats

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/elisa-go/elisa/internal/simtime"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Percentile(0.99) != 0 {
		t.Fatalf("empty histogram not all-zero: %s", h)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		h.Record(v)
	}
	if h.Count() != 10 || h.Min() != 1 || h.Max() != 10 {
		t.Fatalf("count/min/max: %d %d %d", h.Count(), h.Min(), h.Max())
	}
	if m := h.Mean(); m != 5.5 {
		t.Fatalf("mean = %v", m)
	}
	if p := h.Percentile(0.5); p != 5 {
		t.Fatalf("p50 = %d", p)
	}
	if p := h.Percentile(1.0); p != 10 {
		t.Fatalf("p100 = %d", p)
	}
	if p := h.Percentile(0.0); p != 1 {
		t.Fatalf("p0 = %d", p)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	if h.Min() != 0 {
		t.Fatalf("min = %d", h.Min())
	}
}

func TestHistogramRelativeError(t *testing.T) {
	// The log bucketing must keep relative error under ~7% for large
	// values — enough to distinguish the paper's latency curves.
	h := NewHistogram()
	const v = 123456
	h.Record(v)
	got := h.Percentile(0.99)
	relErr := float64(v-got) / float64(v)
	if relErr < 0 || relErr > 0.07 {
		t.Fatalf("p99 of single value %d = %d (rel err %.3f)", v, got, relErr)
	}
}

func TestHistogramDurationAndString(t *testing.T) {
	h := NewHistogram()
	h.RecordDuration(simtime.Duration(196))
	if h.Count() != 1 {
		t.Fatal("RecordDuration did not record")
	}
	if s := h.String(); !strings.Contains(s, "n=1") {
		t.Fatalf("String() = %q", s)
	}
}

// Property: percentiles are monotonically non-decreasing in q and bounded
// by [roughly min, max].
func TestPercentileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHistogram()
	for i := 0; i < 5000; i++ {
		h.Record(rng.Int63n(1_000_000))
	}
	f := func(a, b float64) bool {
		qa, qb := abs01(a), abs01(b)
		if qa > qb {
			qa, qb = qb, qa
		}
		return h.Percentile(qa) <= h.Percentile(qb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	if h.Percentile(1.0) > h.Max() {
		t.Fatal("p100 above max")
	}
}

func abs01(v float64) float64 {
	if v < 0 {
		v = -v
	}
	for v > 1 {
		v /= 10
	}
	return v
}

// Property: bucketLow(bucketOf(v)) <= v for all positive v, and the bucket
// representative is within 7% below v at the default resolution.
func TestBucketInverse(t *testing.T) {
	h := NewHistogram()
	f := func(raw uint32) bool {
		v := int64(raw)
		low := h.bucketLow(h.bucketOf(v))
		if low > v {
			return false
		}
		if v >= int64(h.Resolution()) {
			return float64(v-low)/float64(v) <= 0.07
		}
		return low == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for v := int64(1); v <= 100; v++ {
		a.Record(v)
	}
	for v := int64(101); v <= 200; v++ {
		b.Record(v)
	}
	a.Merge(b)
	if a.Count() != 200 || a.Min() != 1 || a.Max() != 200 {
		t.Fatalf("merged count/min/max: %d %d %d", a.Count(), a.Min(), a.Max())
	}
	if m := a.Mean(); m != 100.5 {
		t.Fatalf("merged mean = %v", m)
	}
	// Merged percentiles must equal recording everything into one
	// histogram directly.
	direct := NewHistogram()
	for v := int64(1); v <= 200; v++ {
		direct.Record(v)
	}
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		if a.Percentile(q) != direct.Percentile(q) {
			t.Fatalf("p%v: merged %d != direct %d", q*100, a.Percentile(q), direct.Percentile(q))
		}
	}
	// b is untouched by the merge.
	if b.Count() != 100 || b.Min() != 101 {
		t.Fatalf("source mutated: %s", b)
	}
}

func TestHistogramMergeEmptyAndNil(t *testing.T) {
	h := NewHistogram()
	h.Record(7)
	h.Merge(nil)
	h.Merge(NewHistogram())
	if h.Count() != 1 || h.Min() != 7 || h.Max() != 7 {
		t.Fatalf("no-op merges changed state: %s", h)
	}
	empty := NewHistogram()
	empty.Merge(h)
	if empty.Count() != 1 || empty.Min() != 7 {
		t.Fatalf("merge into empty: %s", empty)
	}
}

// TestHistogramMergeMismatchedLayouts is the regression test for the
// silent-corruption bug: merging histograms with different bucket
// resolutions used to add counts bucket-index-wise, attributing other's
// samples to wildly wrong values in h. Merge must rebucket instead, so
// count/sum/min/max stay exact and percentiles stay within the coarser
// layout's quantisation error.
func TestHistogramMergeMismatchedLayouts(t *testing.T) {
	coarse := NewHistogramRes(4)
	fine := NewHistogram() // 16 sub-buckets per octave
	for v := int64(1); v <= 1000; v++ {
		fine.Record(v)
	}
	coarse.Record(5000)
	coarse.Merge(fine)
	if coarse.Count() != 1001 || coarse.Min() != 1 || coarse.Max() != 5000 {
		t.Fatalf("merged count/min/max: %d %d %d", coarse.Count(), coarse.Min(), coarse.Max())
	}
	wantSum := int64(5000) + 1000*1001/2
	if coarse.Sum() != wantSum {
		t.Fatalf("merged sum = %d, want %d", coarse.Sum(), wantSum)
	}
	// The p50 of 1..1000 plus one outlier is ~500; at 4 sub-buckets per
	// octave the bucket representative may sit up to ~20% low, where the
	// index-wise merge bug put it off by orders of magnitude.
	if p := coarse.Percentile(0.5); p < 400 || p > 500 {
		t.Fatalf("merged p50 = %d, want ~500 within coarse quantisation", p)
	}
	// Merging the other direction (coarse into fine) rebuckets too.
	fine2 := NewHistogram()
	fine2.Merge(coarse)
	if fine2.Count() != 1001 || fine2.Max() != 5000 {
		t.Fatalf("fine-ward merge count/max: %d %d", fine2.Count(), fine2.Max())
	}
	if p := fine2.Percentile(1); p < 4000 {
		t.Fatalf("fine-ward merge lost the outlier: p100 = %d", p)
	}
}

// Clone must preserve a non-default bucket layout, not coerce it to the
// default one (which would corrupt any later bucket-wise merge back).
func TestHistogramCloneKeepsResolution(t *testing.T) {
	h := NewHistogramRes(4)
	for v := int64(1); v <= 300; v++ {
		h.Record(v)
	}
	c := h.Clone()
	if c.Resolution() != 4 {
		t.Fatalf("clone resolution = %d, want 4", c.Resolution())
	}
	for _, q := range []float64{0.5, 0.99} {
		if c.Percentile(q) != h.Percentile(q) {
			t.Fatalf("p%v: clone %d != original %d", q*100, c.Percentile(q), h.Percentile(q))
		}
	}
}

func TestHistogramClone(t *testing.T) {
	h := NewHistogram()
	h.Record(5)
	c := h.Clone()
	c.Record(100)
	if h.Count() != 1 || c.Count() != 2 || h.Max() != 5 {
		t.Fatalf("clone not independent: h=%s c=%s", h, c)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	for v := int64(0); v < 50; v++ {
		h.Record(v)
	}
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Percentile(0.99) != 0 {
		t.Fatalf("reset histogram not empty: %s", h)
	}
	h.Record(3)
	if h.Count() != 1 || h.Min() != 3 || h.Max() != 3 {
		t.Fatalf("record after reset: %s", h)
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(1000, simtime.Second); got != 1000 {
		t.Fatalf("1000 ops / 1s = %v", got)
	}
	if got := Throughput(500, simtime.Millisecond); got != 500_000 {
		t.Fatalf("500 ops / 1ms = %v", got)
	}
	if got := Throughput(5, 0); got != 0 {
		t.Fatalf("zero elapsed = %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table 2: context round-trip", "Description", "Time [ns]")
	tb.AddRow("ELISA", 196)
	tb.AddRow("VMCALL", 699)
	tb.AddNote("ratio %.1fx", 699.0/196.0)
	out := tb.String()
	for _, want := range []string{"Table 2", "ELISA", "699", "ratio 3.6x", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	md := tb.Markdown()
	for _, want := range []string{"### Table 2", "| ELISA | 196 |", "| --- | --- |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("t", "a")
	tb.AddRow(0.0)
	tb.AddRow(0.1234)
	tb.AddRow(3.14159)
	tb.AddRow(1234.6)
	want := []string{"0", "0.1234", "3.14", "1235"}
	for i, w := range want {
		if tb.Rows[i][0] != w {
			t.Errorf("row %d = %q, want %q", i, tb.Rows[i][0], w)
		}
	}
}
