package stats

import (
	"fmt"
	"strings"
)

// Table is a simple text table: the harness prints every paper artifact
// (tables and figure series alike) as one of these so EXPERIMENTS.md and
// the CLI share a renderer.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmtFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote rendered under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

func fmtFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, head := range t.Headers {
		widths[i] = len(head)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}
