// Package trace is the observability substrate: a bounded ring of
// timestamped events the hypervisor and the ELISA manager emit as they
// work (VM lifecycle, exits, kills, negotiations, revocations). Operators
// of the real system would ship these to their logging pipeline; here the
// buffer powers elisa-inspect and the forensic assertions in tests —
// "did the kill happen, and why" as data rather than as a returned error.
package trace

import (
	"fmt"
	"strings"
	"sync"

	"github.com/elisa-go/elisa/internal/simtime"
)

// Kind classifies an event.
type Kind string

// Event kinds emitted by the machine and the manager.
const (
	KindVMCreate  Kind = "vm-create"
	KindVMDestroy Kind = "vm-destroy"
	KindHypercall Kind = "hypercall"
	KindViolation Kind = "ept-violation"
	KindVMFault   Kind = "vmfunc-fault"
	KindKill      Kind = "kill"
	KindAttach    Kind = "attach"
	KindDetach    Kind = "detach"
	KindRevoke    Kind = "revoke"
	KindCleanup   Kind = "cleanup"
	KindSlotFault Kind = "slot-fault"
	KindSlotEvict Kind = "slot-evict"
	// Fault-injection and recovery kinds (PR 3).
	KindCrash   Kind = "crash"        // guest died (injected or organic), not a protocol kill
	KindInject  Kind = "fault-inject" // a planned fault fired
	KindRecover Kind = "recover"      // manager quarantined + reclaimed a dead guest
	KindRepair  Kind = "fsck-repair"  // online Fsck repaired machine state
	// Ring-datapath kinds (PR 4).
	KindRing Kind = "ring-setup" // a call ring was negotiated for an attachment
)

// Event is one record.
type Event struct {
	// Seq is a monotonically increasing sequence number (survives ring
	// wrap, so gaps are detectable).
	Seq uint64
	// T is the emitting vCPU's simulated time (0 for host-side events
	// with no running guest).
	T simtime.Time
	// VM names the guest concerned ("" for machine-wide events).
	VM string
	// Kind classifies the event.
	Kind Kind
	// Detail is a human-readable specific.
	Detail string
}

// String renders one event as a fixed-width trace line.
func (e Event) String() string {
	return fmt.Sprintf("[%06d %12s] %-14s %-12s %s", e.Seq, simtime.Duration(e.T), e.Kind, e.VM, e.Detail)
}

// Buffer is a bounded event ring. A nil *Buffer is valid and discards
// everything, so emit sites never need nil checks.
//
// Buffer is safe for concurrent use. The simulated machine itself is
// single-threaded per vCPU, but workload harnesses may drive several
// guests from separate goroutines, and observability tools (elisa-top,
// the metrics registry) read the buffer while workloads run — so Emit
// and the readers are serialised by an internal mutex.
type Buffer struct {
	mu    sync.Mutex
	cap   int
	evs   []Event
	next  uint64
	start int // ring head when full
}

// NewBuffer creates a ring holding up to capacity events (<=0 picks 1024).
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Buffer{cap: capacity}
}

// Emit appends an event; the oldest is dropped when full.
func (b *Buffer) Emit(t simtime.Time, vm string, kind Kind, format string, args ...any) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := Event{Seq: b.next, T: t, VM: vm, Kind: kind, Detail: fmt.Sprintf(format, args...)}
	b.next++
	if len(b.evs) < b.cap {
		b.evs = append(b.evs, e)
		return
	}
	b.evs[b.start] = e
	b.start = (b.start + 1) % b.cap
}

// Len reports the number of retained events.
func (b *Buffer) Len() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.evs)
}

// Emitted reports the total number of events ever emitted.
func (b *Buffer) Emitted() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.next
}

// Events returns the retained events, oldest first.
func (b *Buffer) Events() []Event {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Event, 0, len(b.evs))
	out = append(out, b.evs[b.start:]...)
	out = append(out, b.evs[:b.start]...)
	return out
}

// Filter returns retained events matching the kind ("" matches all) and
// VM name ("" matches all).
func (b *Buffer) Filter(kind Kind, vm string) []Event {
	var out []Event
	for _, e := range b.Events() {
		if kind != "" && e.Kind != kind {
			continue
		}
		if vm != "" && e.VM != vm {
			continue
		}
		out = append(out, e)
	}
	return out
}

// String renders the retained events, one per line.
func (b *Buffer) String() string {
	var sb strings.Builder
	for _, e := range b.Events() {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
