package trace

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestNilBufferIsSafe(t *testing.T) {
	var b *Buffer
	b.Emit(0, "vm", KindKill, "x")
	if b.Len() != 0 || b.Emitted() != 0 || b.Events() != nil {
		t.Fatal("nil buffer not inert")
	}
}

func TestEmitAndOrder(t *testing.T) {
	b := NewBuffer(8)
	b.Emit(10, "a", KindVMCreate, "first")
	b.Emit(20, "b", KindAttach, "second %d", 2)
	evs := b.Events()
	if len(evs) != 2 {
		t.Fatalf("len = %d", len(evs))
	}
	if evs[0].Seq != 0 || evs[1].Seq != 1 {
		t.Fatalf("seqs %d %d", evs[0].Seq, evs[1].Seq)
	}
	if evs[1].Detail != "second 2" {
		t.Fatalf("detail %q", evs[1].Detail)
	}
	if !strings.Contains(b.String(), "vm-create") {
		t.Fatalf("render:\n%s", b.String())
	}
}

func TestRingWrap(t *testing.T) {
	b := NewBuffer(4)
	for i := 0; i < 10; i++ {
		b.Emit(0, "vm", KindHypercall, "ev%d", i)
	}
	if b.Len() != 4 || b.Emitted() != 10 {
		t.Fatalf("len=%d emitted=%d", b.Len(), b.Emitted())
	}
	evs := b.Events()
	// Oldest retained is seq 6, newest 9, strictly in order.
	for i, e := range evs {
		if e.Seq != uint64(6+i) {
			t.Fatalf("evs[%d].Seq = %d", i, e.Seq)
		}
	}
}

func TestFilter(t *testing.T) {
	b := NewBuffer(16)
	b.Emit(0, "a", KindKill, "k1")
	b.Emit(0, "b", KindKill, "k2")
	b.Emit(0, "a", KindAttach, "at")
	if n := len(b.Filter(KindKill, "")); n != 2 {
		t.Fatalf("kill filter: %d", n)
	}
	if n := len(b.Filter("", "a")); n != 2 {
		t.Fatalf("vm filter: %d", n)
	}
	if n := len(b.Filter(KindKill, "b")); n != 1 {
		t.Fatalf("combined filter: %d", n)
	}
	if n := len(b.Filter(KindRevoke, "")); n != 0 {
		t.Fatalf("absent kind: %d", n)
	}
}

// After a wrap, the sequence numbers expose exactly how many events were
// dropped: the oldest retained Seq equals Emitted() - Len(), and retained
// Seqs are contiguous (no internal gaps).
func TestSeqGapDetectionAfterWrap(t *testing.T) {
	b := NewBuffer(8)
	const emitted = 37
	for i := 0; i < emitted; i++ {
		b.Emit(0, "vm", KindHypercall, "ev%d", i)
	}
	if b.Emitted() != emitted || b.Len() != 8 {
		t.Fatalf("emitted=%d len=%d", b.Emitted(), b.Len())
	}
	evs := b.Events()
	dropped := b.Emitted() - uint64(b.Len())
	if evs[0].Seq != dropped {
		t.Fatalf("oldest retained Seq = %d, want %d (the gap is the drop count)", evs[0].Seq, dropped)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("internal gap between %d and %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
	if evs[len(evs)-1].Seq != emitted-1 {
		t.Fatalf("newest Seq = %d", evs[len(evs)-1].Seq)
	}
}

// Filter with both a kind and a VM set must apply the conjunction, also
// across a ring wrap.
func TestFilterKindAndVMCombined(t *testing.T) {
	b := NewBuffer(6)
	// 12 events, alternating VM and kind; the ring retains the last 6.
	for i := 0; i < 12; i++ {
		vm := "a"
		if i%2 == 1 {
			vm = "b"
		}
		kind := KindAttach
		if i%3 == 0 {
			kind = KindKill
		}
		b.Emit(0, vm, kind, "ev%d", i)
	}
	got := b.Filter(KindKill, "b")
	// Retained events are 6..11; kills are 6 and 9; of those, VM "b" is 9.
	if len(got) != 1 || got[0].Seq != 9 {
		t.Fatalf("combined filter after wrap: %+v", got)
	}
	for _, e := range b.Filter(KindAttach, "a") {
		if e.Kind != KindAttach || e.VM != "a" {
			t.Fatalf("conjunction violated: %+v", e)
		}
	}
	if n := len(b.Filter(KindKill, "a")) + len(b.Filter(KindKill, "b")); n != len(b.Filter(KindKill, "")) {
		t.Fatal("kind+vm partitions disagree with kind-only filter")
	}
}

// Emit is documented as safe for concurrent use: workload harnesses may
// drive several guests from separate goroutines while elisa-top reads the
// buffer. Run with -race to enforce it.
func TestConcurrentEmitAndRead(t *testing.T) {
	b := NewBuffer(64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			vm := fmt.Sprintf("vm-%d", g)
			for i := 0; i < 250; i++ {
				b.Emit(0, vm, KindHypercall, "ev%d", i)
				if i%25 == 0 {
					_ = b.Events()
					_ = b.Filter(KindHypercall, vm)
					_ = b.Len()
				}
			}
		}(g)
	}
	wg.Wait()
	if b.Emitted() != 1000 || b.Len() != 64 {
		t.Fatalf("emitted=%d len=%d", b.Emitted(), b.Len())
	}
	// Seqs must still be unique and dense 0..999 overall; retained ones
	// are the largest 64 in some interleaving-dependent order-preserving
	// sequence (oldest-first by Seq).
	evs := b.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("retained events out of order: %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
	}
}

func TestDefaultCapacity(t *testing.T) {
	b := NewBuffer(0)
	for i := 0; i < 2000; i++ {
		b.Emit(0, "vm", KindHypercall, "x")
	}
	if b.Len() != 1024 {
		t.Fatalf("default cap = %d", b.Len())
	}
}
