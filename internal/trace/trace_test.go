package trace

import (
	"strings"
	"testing"
)

func TestNilBufferIsSafe(t *testing.T) {
	var b *Buffer
	b.Emit(0, "vm", KindKill, "x")
	if b.Len() != 0 || b.Emitted() != 0 || b.Events() != nil {
		t.Fatal("nil buffer not inert")
	}
}

func TestEmitAndOrder(t *testing.T) {
	b := NewBuffer(8)
	b.Emit(10, "a", KindVMCreate, "first")
	b.Emit(20, "b", KindAttach, "second %d", 2)
	evs := b.Events()
	if len(evs) != 2 {
		t.Fatalf("len = %d", len(evs))
	}
	if evs[0].Seq != 0 || evs[1].Seq != 1 {
		t.Fatalf("seqs %d %d", evs[0].Seq, evs[1].Seq)
	}
	if evs[1].Detail != "second 2" {
		t.Fatalf("detail %q", evs[1].Detail)
	}
	if !strings.Contains(b.String(), "vm-create") {
		t.Fatalf("render:\n%s", b.String())
	}
}

func TestRingWrap(t *testing.T) {
	b := NewBuffer(4)
	for i := 0; i < 10; i++ {
		b.Emit(0, "vm", KindHypercall, "ev%d", i)
	}
	if b.Len() != 4 || b.Emitted() != 10 {
		t.Fatalf("len=%d emitted=%d", b.Len(), b.Emitted())
	}
	evs := b.Events()
	// Oldest retained is seq 6, newest 9, strictly in order.
	for i, e := range evs {
		if e.Seq != uint64(6+i) {
			t.Fatalf("evs[%d].Seq = %d", i, e.Seq)
		}
	}
}

func TestFilter(t *testing.T) {
	b := NewBuffer(16)
	b.Emit(0, "a", KindKill, "k1")
	b.Emit(0, "b", KindKill, "k2")
	b.Emit(0, "a", KindAttach, "at")
	if n := len(b.Filter(KindKill, "")); n != 2 {
		t.Fatalf("kill filter: %d", n)
	}
	if n := len(b.Filter("", "a")); n != 2 {
		t.Fatalf("vm filter: %d", n)
	}
	if n := len(b.Filter(KindKill, "b")); n != 1 {
		t.Fatalf("combined filter: %d", n)
	}
	if n := len(b.Filter(KindRevoke, "")); n != 0 {
		t.Fatalf("absent kind: %d", n)
	}
}

func TestDefaultCapacity(t *testing.T) {
	b := NewBuffer(0)
	for i := 0; i < 2000; i++ {
		b.Emit(0, "vm", KindHypercall, "x")
	}
	if b.Len() != 1024 {
		t.Fatalf("default cap = %d", b.Len())
	}
}
