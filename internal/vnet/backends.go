package vnet

import (
	"fmt"

	"github.com/elisa-go/elisa/internal/core"
	"github.com/elisa-go/elisa/internal/ept"
	"github.com/elisa-go/elisa/internal/hv"
	"github.com/elisa-go/elisa/internal/mem"
	"github.com/elisa-go/elisa/internal/shm"
	"github.com/elisa-go/elisa/internal/simtime"
)

// Per-packet processing costs beyond raw byte movement. Calibrated (with
// the batch sizes in runner.go) against the paper's §7.1 figures; see
// EXPERIMENTS.md.
const (
	// driverInstr is the guest driver's per-packet descriptor handling.
	driverInstr = 20
	// hostExtra is the host-interposition path's per-packet processing
	// (address validation, switching) on top of the copies.
	hostExtra simtime.Duration = 40
	// mgrExtra is the ELISA manager code's per-packet processing in the
	// sub context (same switching logic, no exits).
	mgrExtra simtime.Duration = 30
	// vhostExtra is the vhost-net kernel path's per-packet overhead
	// (virtio descriptor parsing, skb handling).
	vhostExtra simtime.Duration = 200
	// vfExtra is the SR-IOV virtual function's per-packet overhead.
	vfExtra simtime.Duration = 5
	// vvAppInstr is the receiving application's per-packet work in the
	// VM-to-VM scenario (header inspection, forwarding decision).
	vvAppInstr = 25
)

// frameStride is the packed frame footprint in staging/exchange buffers.
const frameStride = 8 + SlotBytes + 4 // u64 length + MTU payload, padded

// Backend is one guest's path to the physical NIC.
type Backend interface {
	// Name is the scheme label used in the paper's figures.
	Name() string
	// Guest returns the VM driving the NIC through this backend.
	Guest() *hv.VM
	// RecvBatch moves up to max frames from the NIC RX ring into the
	// guest, verifying payload integrity. Costs land on the guest clock.
	RecvBatch(max int) (int, error)
	// SendBatch produces and hands count frames of size bytes to the NIC
	// TX ring. It returns how many were accepted (ring may fill).
	SendBatch(count, size int) (int, error)
}

// ---------------------------------------------------------------------------
// Direct mapping (ivshmem-like) and SR-IOV: the guest touches the DMA
// rings itself; SR-IOV adds a VF tax per packet.

// DirectBackend maps the NIC rings straight into the guest's default
// context. With extra=vfExtra it models an SR-IOV virtual function.
type DirectBackend struct {
	name  string
	vm    *hv.VM
	nic   *NIC
	rx    *shm.Ring
	tx    *shm.Ring
	extra simtime.Duration
	rxSeq int
	txSeq int
}

// NewDirectBackend wires a guest to the NIC by direct mapping.
func NewDirectBackend(h *hv.Hypervisor, nic *NIC, vm *hv.VM) (*DirectBackend, error) {
	return newDirect("ivshmem", h, nic, vm, 0)
}

// NewSRIOVBackend wires a guest to a virtual function of the NIC.
func NewSRIOVBackend(h *hv.Hypervisor, nic *NIC, vm *hv.VM) (*DirectBackend, error) {
	return newDirect("sriov", h, nic, vm, vfExtra)
}

func newDirect(name string, h *hv.Hypervisor, nic *NIC, vm *hv.VM, extra simtime.Duration) (*DirectBackend, error) {
	rxGPA, err := nic.RXRegion().MapIntoDefault(vm, ept.PermRW)
	if err != nil {
		return nil, err
	}
	txGPA, err := nic.TXRegion().MapIntoDefault(vm, ept.PermRW)
	if err != nil {
		return nil, err
	}
	rxw, err := shm.NewGPAWindow(vm.VCPU(), rxGPA, nic.RXRegion().Size())
	if err != nil {
		return nil, err
	}
	txw, err := shm.NewGPAWindow(vm.VCPU(), txGPA, nic.TXRegion().Size())
	if err != nil {
		return nil, err
	}
	rx, err := shm.OpenRing(rxw)
	if err != nil {
		return nil, err
	}
	tx, err := shm.OpenRing(txw)
	if err != nil {
		return nil, err
	}
	return &DirectBackend{name: name, vm: vm, nic: nic, rx: rx, tx: tx, extra: extra}, nil
}

// Name implements Backend.
func (b *DirectBackend) Name() string { return b.name }

// Guest implements Backend.
func (b *DirectBackend) Guest() *hv.VM { return b.vm }

// RecvBatch implements Backend.
func (b *DirectBackend) RecvBatch(max int) (int, error) {
	v := b.vm.VCPU()
	buf := make([]byte, SlotBytes)
	got := 0
	for got < max {
		v.ChargeInstr(driverInstr)
		v.Charge(b.extra)
		n, ok, err := b.rx.Pop(buf)
		if err != nil {
			return got, err
		}
		if !ok {
			break
		}
		if !checkPattern(buf[:n], b.rxSeq) {
			return got, fmt.Errorf("vnet: %s: RX frame %d corrupted", b.name, b.rxSeq)
		}
		b.rxSeq++
		got++
	}
	return got, nil
}

// SendBatch implements Backend.
func (b *DirectBackend) SendBatch(count, size int) (int, error) {
	v := b.vm.VCPU()
	buf := make([]byte, size)
	sent := 0
	for sent < count {
		// Produce the payload in guest memory, then hand it to the ring.
		v.ChargeInstr(driverInstr)
		v.Charge(b.extra + v.Cost().CopyCost(size))
		fillPattern(buf, b.txSeq)
		ok, err := b.tx.Push(buf)
		if err != nil {
			return sent, err
		}
		if !ok {
			break
		}
		b.txSeq++
		sent++
	}
	return sent, nil
}

// ---------------------------------------------------------------------------
// Host interposition (VMCALL) and vhost-net: the NIC rings stay host
// private; the guest stages batches in its RAM and exits per batch.

// Hypercall numbers of the interposed network service.
const (
	HCNetRX uint64 = 0x4E450001
	HCNetTX uint64 = 0x4E450002
)

// stagingBase is where interposed backends stage packet batches in guest
// RAM (the guest's driver owns this area).
const stagingBase mem.GPA = 0x8000

// InterposedService is the host side of the VMCALL / vhost-net paths:
// registered once per hypervisor, it routes each hypercall to the calling
// VM's NIC queue, so any number of guests can share one machine (and one
// wire).
type InterposedService struct {
	h     *hv.Hypervisor
	vhost bool
	nics  map[int]*NIC // by VM id
}

// NewInterposedService registers the network hypercalls. One service per
// hypervisor (vmcall and vhost-net are alternative models of the same
// interposed path, never deployed together here).
func NewInterposedService(h *hv.Hypervisor, vhost bool) (*InterposedService, error) {
	s := &InterposedService{h: h, vhost: vhost, nics: make(map[int]*NIC)}
	if err := h.RegisterHypercall(HCNetRX, s.hcRX); err != nil {
		return nil, err
	}
	if err := h.RegisterHypercall(HCNetTX, s.hcTX); err != nil {
		return nil, err
	}
	return s, nil
}

// NewBackend wires a guest to its NIC queue through this service.
func (s *InterposedService) NewBackend(vm *hv.VM, nic *NIC) (*InterposedBackend, error) {
	if int(stagingBase)+16*frameStride > vm.RAMBytes() {
		return nil, fmt.Errorf("vnet: guest RAM %d too small for staging", vm.RAMBytes())
	}
	if _, dup := s.nics[vm.ID()]; dup {
		return nil, fmt.Errorf("vnet: vm %q already has an interposed backend", vm.Name())
	}
	s.nics[vm.ID()] = nic
	name := "vmcall"
	if s.vhost {
		name = "vhost-net"
	}
	return &InterposedBackend{name: name, svc: s, vm: vm}, nil
}

func (s *InterposedService) nicFor(vm *hv.VM) (*NIC, error) {
	nic, ok := s.nics[vm.ID()]
	if !ok {
		return nil, fmt.Errorf("vnet: vm %q has no NIC queue", vm.Name())
	}
	return nic, nil
}

func (s *InterposedService) perPkt() simtime.Duration {
	if s.vhost {
		return hostExtra + vhostExtra
	}
	return hostExtra
}

// hcRX pops up to args[1] frames from the caller's NIC RX ring into guest
// staging.
func (s *InterposedService) hcRX(vm *hv.VM, args [4]uint64) (uint64, error) {
	staging, max := mem.GPA(args[0]), int(args[1])
	nic, err := s.nicFor(vm)
	if err != nil {
		return 0, err
	}
	v := vm.VCPU()
	buf := make([]byte, SlotBytes)
	hw, err := shm.NewHostWindow(nic.RXRegion(), v.Clock())
	if err != nil {
		return 0, err
	}
	ring, err := shm.OpenRing(hw)
	if err != nil {
		return 0, err
	}
	got := 0
	for got < max {
		v.Charge(s.perPkt())
		n, ok, err := ring.Pop(buf)
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		off := staging + mem.GPA(got*frameStride)
		hdr := make([]byte, 8)
		putU64(hdr, uint64(n))
		if err := vm.GuestWrite(off, hdr); err != nil {
			return 0, err
		}
		if err := vm.GuestWrite(off+8, buf[:n]); err != nil {
			return 0, err
		}
		got++
	}
	if s.vhost {
		v.Charge(s.h.Cost().IRQInject)
	}
	return uint64(got), nil
}

// hcTX pushes args[1] frames of size args[2] from guest staging into the
// caller's NIC TX ring.
func (s *InterposedService) hcTX(vm *hv.VM, args [4]uint64) (uint64, error) {
	staging, count, size := mem.GPA(args[0]), int(args[1]), int(args[2])
	if size <= 0 || size > SlotBytes {
		return 0, fmt.Errorf("vnet: TX size %d invalid", size)
	}
	nic, err := s.nicFor(vm)
	if err != nil {
		return 0, err
	}
	v := vm.VCPU()
	hw, err := shm.NewHostWindow(nic.TXRegion(), v.Clock())
	if err != nil {
		return 0, err
	}
	ring, err := shm.OpenRing(hw)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, size)
	sent := 0
	for sent < count {
		v.Charge(s.perPkt())
		if err := vm.GuestRead(staging+mem.GPA(sent*frameStride)+8, buf); err != nil {
			return 0, err
		}
		ok, err := ring.Push(buf)
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		sent++
	}
	if s.vhost {
		v.Charge(s.h.Cost().IRQInject)
	}
	return uint64(sent), nil
}

// InterposedBackend reaches its NIC queue through the service's
// hypercalls. With a vhost service it models vhost-net: a virtio kick per
// batch, kernel-path per-packet overhead, and a completion interrupt.
type InterposedBackend struct {
	name  string
	svc   *InterposedService
	vm    *hv.VM
	rxSeq int
	txSeq int
}

// NewVMCallBackend builds a single-guest host-interposition path
// (convenience wrapper: one service, one backend).
func NewVMCallBackend(h *hv.Hypervisor, nic *NIC, vm *hv.VM) (*InterposedBackend, error) {
	svc, err := NewInterposedService(h, false)
	if err != nil {
		return nil, err
	}
	return svc.NewBackend(vm, nic)
}

// NewVhostBackend builds a single-guest vhost-net model.
func NewVhostBackend(h *hv.Hypervisor, nic *NIC, vm *hv.VM) (*InterposedBackend, error) {
	svc, err := NewInterposedService(h, true)
	if err != nil {
		return nil, err
	}
	return svc.NewBackend(vm, nic)
}

// Name implements Backend.
func (b *InterposedBackend) Name() string { return b.name }

// Guest implements Backend.
func (b *InterposedBackend) Guest() *hv.VM { return b.vm }

// RecvBatch implements Backend.
func (b *InterposedBackend) RecvBatch(max int) (int, error) {
	v := b.vm.VCPU()
	if b.svc.vhost {
		v.Charge(v.Cost().KickDoorbell)
	}
	ret, err := v.VMCall(HCNetRX, uint64(stagingBase), uint64(max))
	if err != nil {
		return 0, err
	}
	got := int(ret)
	hdr := make([]byte, 8)
	buf := make([]byte, SlotBytes)
	for i := 0; i < got; i++ {
		v.ChargeInstr(driverInstr)
		off := stagingBase + mem.GPA(i*frameStride)
		if err := v.ReadGPA(off, hdr); err != nil {
			return i, err
		}
		n := int(getU64(hdr))
		if n <= 0 || n > SlotBytes {
			return i, fmt.Errorf("vnet: %s: bad staged length %d", b.name, n)
		}
		if err := v.ReadGPA(off+8, buf[:n]); err != nil {
			return i, err
		}
		if !checkPattern(buf[:n], b.rxSeq) {
			return i, fmt.Errorf("vnet: %s: RX frame %d corrupted", b.name, b.rxSeq)
		}
		b.rxSeq++
	}
	return got, nil
}

// SendBatch implements Backend.
func (b *InterposedBackend) SendBatch(count, size int) (int, error) {
	v := b.vm.VCPU()
	buf := make([]byte, size)
	for i := 0; i < count; i++ {
		v.ChargeInstr(driverInstr)
		fillPattern(buf, b.txSeq+i)
		off := stagingBase + mem.GPA(i*frameStride)
		hdr := make([]byte, 8)
		putU64(hdr, uint64(size))
		if err := v.WriteGPA(off, hdr); err != nil {
			return 0, err
		}
		if err := v.WriteGPA(off+8, buf); err != nil {
			return 0, err
		}
	}
	if b.svc.vhost {
		v.Charge(v.Cost().KickDoorbell)
	}
	ret, err := v.VMCall(HCNetTX, uint64(stagingBase), uint64(count), uint64(size))
	if err != nil {
		return 0, err
	}
	b.txSeq += int(ret)
	return int(ret), nil
}

// ---------------------------------------------------------------------------
// ELISA: the NIC rings are manager objects; the guest switches into sub
// contexts to run the manager's NIC code — no exits.

// Manager function IDs of the ELISA network service.
const (
	FnNetRX uint64 = 0x4E45_0101
	FnNetTX uint64 = 0x4E45_0102
)

// ELISANetService is the manager side of the ELISA networking path:
// registered once per manager, it publishes each guest's NIC queue rings
// as objects and routes the manager functions to the right queue, so any
// number of guests can share the machine (and the wire) exit-lessly.
type ELISANetService struct {
	h     *hv.Hypervisor
	mgr   *core.Manager
	rings map[mem.GPA]*shm.Ring // device ring views, keyed by object GPA
	seq   int                   // per-guest object name uniquifier
}

// NewELISANetService registers the manager functions.
func NewELISANetService(h *hv.Hypervisor, mgr *core.Manager) (*ELISANetService, error) {
	s := &ELISANetService{h: h, mgr: mgr, rings: make(map[mem.GPA]*shm.Ring)}
	if err := mgr.RegisterFunc(FnNetRX, s.fnRX); err != nil {
		return nil, err
	}
	if err := mgr.RegisterFunc(FnNetTX, s.fnTX); err != nil {
		return nil, err
	}
	return s, nil
}

// NewBackend publishes the guest's NIC queue as two objects and attaches
// the guest to them.
func (s *ELISANetService) NewBackend(g *core.Guest, nic *NIC) (*ELISABackend, error) {
	prefix := fmt.Sprintf("nicq%d", s.seq)
	s.seq++
	if _, err := s.mgr.CreateObjectFromRegion(prefix+"-rx", nic.RXRegion()); err != nil {
		return nil, err
	}
	if _, err := s.mgr.CreateObjectFromRegion(prefix+"-tx", nic.TXRegion()); err != nil {
		return nil, err
	}
	b := &ELISABackend{svc: s, guest: g, nic: nic}
	var err error
	if b.hRX, err = g.Attach(prefix + "-rx"); err != nil {
		return nil, err
	}
	if b.hTX, err = g.Attach(prefix + "-tx"); err != nil {
		return nil, err
	}
	return b, nil
}

// ringFor opens the device ring behind an object through the calling
// guest's sub context. The object GPA is unique per object, so the cache
// cannot alias across guests or queues.
func (s *ELISANetService) ringFor(ctx *core.CallContext) (*shm.Ring, error) {
	if r, ok := s.rings[ctx.Object]; ok {
		return r, nil
	}
	w, err := shm.NewGPAWindow(ctx.VCPU, ctx.Object, ctx.ObjectSize)
	if err != nil {
		return nil, err
	}
	r, err := shm.OpenRing(w)
	if err != nil {
		return nil, err
	}
	s.rings[ctx.Object] = r
	return r, nil
}

func (s *ELISANetService) fnRX(ctx *core.CallContext) (uint64, error) {
	max := int(ctx.Args[0])
	ring, err := s.ringFor(ctx)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, SlotBytes)
	got := 0
	for got < max {
		ctx.VCPU.Charge(mgrExtra)
		n, ok, err := ring.Pop(buf)
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		off := got * frameStride
		hdr := make([]byte, 8)
		putU64(hdr, uint64(n))
		if err := ctx.WriteExchange(off, hdr); err != nil {
			return 0, err
		}
		if err := ctx.WriteExchange(off+8, buf[:n]); err != nil {
			return 0, err
		}
		got++
	}
	return uint64(got), nil
}

func (s *ELISANetService) fnTX(ctx *core.CallContext) (uint64, error) {
	count, size := int(ctx.Args[0]), int(ctx.Args[1])
	if size <= 0 || size > SlotBytes {
		return 0, fmt.Errorf("vnet: elisa TX size %d invalid", size)
	}
	ring, err := s.ringFor(ctx)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, size)
	sent := 0
	for sent < count {
		ctx.VCPU.Charge(mgrExtra)
		if err := ctx.ReadExchange(sent*frameStride+8, buf); err != nil {
			return 0, err
		}
		ok, err := ring.Push(buf)
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		sent++
	}
	return uint64(sent), nil
}

// ELISABackend reaches its NIC queue through the gate — no exits.
type ELISABackend struct {
	svc   *ELISANetService
	guest *core.Guest
	nic   *NIC
	hRX   *core.Handle
	hTX   *core.Handle
	rxSeq int
	txSeq int
}

// NewELISABackend builds a single-guest ELISA path (convenience wrapper:
// one service, one backend).
func NewELISABackend(h *hv.Hypervisor, mgr *core.Manager, nic *NIC, g *core.Guest) (*ELISABackend, error) {
	svc, err := NewELISANetService(h, mgr)
	if err != nil {
		return nil, err
	}
	return svc.NewBackend(g, nic)
}

// Name implements Backend.
func (b *ELISABackend) Name() string { return "elisa" }

// Guest implements Backend.
func (b *ELISABackend) Guest() *hv.VM { return b.guest.VM() }

// RecvBatch implements Backend.
func (b *ELISABackend) RecvBatch(max int) (int, error) {
	v := b.guest.VM().VCPU()
	if cap := b.hRX.ExchangeSize() / frameStride; max > cap {
		max = cap
	}
	ret, err := b.hRX.Call(v, FnNetRX, uint64(max))
	if err != nil {
		return 0, err
	}
	got := int(ret)
	hdr := make([]byte, 8)
	buf := make([]byte, SlotBytes)
	for i := 0; i < got; i++ {
		v.ChargeInstr(driverInstr)
		off := i * frameStride
		if err := b.hRX.ExchangeRead(v, off, hdr); err != nil {
			return i, err
		}
		n := int(getU64(hdr))
		if n <= 0 || n > SlotBytes {
			return i, fmt.Errorf("vnet: elisa: bad staged length %d", n)
		}
		if err := b.hRX.ExchangeRead(v, off+8, buf[:n]); err != nil {
			return i, err
		}
		if !checkPattern(buf[:n], b.rxSeq) {
			return i, fmt.Errorf("vnet: elisa: RX frame %d corrupted", b.rxSeq)
		}
		b.rxSeq++
	}
	return got, nil
}

// SendBatch implements Backend.
func (b *ELISABackend) SendBatch(count, size int) (int, error) {
	v := b.guest.VM().VCPU()
	if cap := b.hTX.ExchangeSize() / frameStride; count > cap {
		count = cap
	}
	buf := make([]byte, size)
	hdr := make([]byte, 8)
	for i := 0; i < count; i++ {
		v.ChargeInstr(driverInstr)
		fillPattern(buf, b.txSeq+i)
		putU64(hdr, uint64(size))
		off := i * frameStride
		if err := b.hTX.ExchangeWrite(v, off, hdr); err != nil {
			return 0, err
		}
		if err := b.hTX.ExchangeWrite(v, off+8, buf); err != nil {
			return 0, err
		}
	}
	ret, err := b.hTX.Call(v, FnNetTX, uint64(count), uint64(size))
	if err != nil {
		return 0, err
	}
	b.txSeq += int(ret)
	return int(ret), nil
}

func putU64(p []byte, v uint64) {
	for i := 0; i < 8; i++ {
		p[i] = byte(v >> (8 * i))
	}
}

func getU64(p []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(p[i]) << (8 * i)
	}
	return v
}
