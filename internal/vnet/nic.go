// Package vnet implements the paper's first use case: a HyperNF-style VM
// networking system (§7.1). A physical 10 GbE NIC model with DMA
// descriptor rings in simulated memory is reached by guest VMs through
// five I/O backends — ivshmem direct mapping, VMCALL host-interposition,
// ELISA, vhost-net and SR-IOV — across three scenarios: RX over the NIC,
// TX over the NIC, and VM-to-VM forwarding through a virtual switch.
//
// Packets are real bytes moving through simulated physical memory
// (payload integrity is verified end-to-end); throughput comes from the
// calibrated cost model: at small packet sizes the schemes differ by
// their per-batch context-switch costs (the paper's point), at large
// sizes everyone converges on the wire's line rate.
package vnet

import (
	"fmt"

	"github.com/elisa-go/elisa/internal/hv"
	"github.com/elisa-go/elisa/internal/shm"
	"github.com/elisa-go/elisa/internal/simtime"
)

// Ring geometry of the NIC DMA rings: 256 descriptors of MTU-sized slots.
const (
	RingSlots = 256
	SlotBytes = 1500
)

// Wire is the serialisation timeline of one physical link. Several NIC
// queues (VMDq/SR-IOV style) may share a Wire: their frames interleave on
// the same line-rate-bound medium, which is how the multi-VM NIC-sharing
// experiments model consolidation.
type Wire struct {
	rx simtime.Time // when the wire finishes delivering the next RX frame
	tx simtime.Time // when the wire finishes accepting the last TX frame
}

// NIC models one physical 10 GbE adapter queue pair: an RX ring filled
// from the wire and a TX ring drained to the wire, both living in host
// memory, plus the (possibly shared) wire timeline — the line-rate bound.
type NIC struct {
	hv   *hv.Hypervisor
	cost simtime.CostModel

	rxRegion *hv.HostRegion
	txRegion *hv.HostRegion
	rxRing   *shm.Ring // device-side view (uncharged: the NIC is hardware)
	txRing   *shm.Ring

	wire *Wire

	rxSeq int // pattern sequence for generated frames
	txSeq int // expected pattern sequence for transmitted frames
	txOK  int // verified transmitted frames
}

// NewNIC allocates the adapter's DMA rings in host memory, on its own
// dedicated wire.
func NewNIC(h *hv.Hypervisor) (*NIC, error) {
	return NewNICOnWire(h, &Wire{})
}

// NewNICOnWire allocates a queue pair that shares an existing wire with
// other queues (a multi-queue adapter serving several VMs).
func NewNICOnWire(h *hv.Hypervisor, w *Wire) (*NIC, error) {
	if w == nil {
		w = &Wire{}
	}
	n := &NIC{hv: h, cost: h.Cost(), wire: w}
	var err error
	if n.rxRegion, err = h.AllocHostRegion(shm.RingBytes(RingSlots, SlotBytes)); err != nil {
		return nil, err
	}
	if n.txRegion, err = h.AllocHostRegion(shm.RingBytes(RingSlots, SlotBytes)); err != nil {
		return nil, err
	}
	rxw, err := shm.NewHostWindow(n.rxRegion, nil)
	if err != nil {
		return nil, err
	}
	txw, err := shm.NewHostWindow(n.txRegion, nil)
	if err != nil {
		return nil, err
	}
	if n.rxRing, err = shm.InitRing(rxw, RingSlots, SlotBytes); err != nil {
		return nil, err
	}
	if n.txRing, err = shm.InitRing(txw, RingSlots, SlotBytes); err != nil {
		return nil, err
	}
	return n, nil
}

// RXRegion returns the RX DMA ring's backing memory (for mapping into
// contexts).
func (n *NIC) RXRegion() *hv.HostRegion { return n.rxRegion }

// TXRegion returns the TX DMA ring's backing memory.
func (n *NIC) TXRegion() *hv.HostRegion { return n.txRegion }

// GenerateRX makes the wire deliver up to `want` frames of `size` payload
// bytes into the RX ring, but never past `deadline` (the consumer's
// current time): the wire is a fixed-rate producer, not an infinite
// backlog. It returns how many frames were added and the wire time after
// the last one.
func (n *NIC) GenerateRX(want, size int, deadline simtime.Time) (int, simtime.Time, error) {
	if size <= 0 || size > SlotBytes {
		return 0, n.wire.rx, fmt.Errorf("vnet: frame size %d outside (0,%d]", size, SlotBytes)
	}
	added := 0
	buf := make([]byte, size)
	for added < want {
		arrival := n.wire.rx.Add(n.cost.NICWireTime(size))
		if arrival > deadline {
			break
		}
		free, err := n.rxRing.Free()
		if err != nil {
			return added, n.wire.rx, err
		}
		if free == 0 {
			break // ring overrun: the consumer is too slow; frames drop
		}
		fillPattern(buf, n.rxSeq)
		if _, err := n.rxRing.Push(buf); err != nil {
			return added, n.wire.rx, err
		}
		n.rxSeq++
		n.wire.rx = arrival
		added++
	}
	return added, n.wire.rx, nil
}

// DrainTX makes the wire transmit every frame currently in the TX ring,
// starting no earlier than `from`, verifying payload integrity. It
// returns the count drained and the wire time after the last frame.
func (n *NIC) DrainTX(from simtime.Time) (int, simtime.Time, error) {
	if n.wire.tx < from {
		n.wire.tx = from
	}
	buf := make([]byte, SlotBytes)
	drained := 0
	for {
		ln, ok, err := n.txRing.Pop(buf)
		if err != nil {
			return drained, n.wire.tx, err
		}
		if !ok {
			return drained, n.wire.tx, nil
		}
		if !checkPattern(buf[:ln], n.txSeq) {
			return drained, n.wire.tx, fmt.Errorf("vnet: TX frame %d corrupted in flight", n.txSeq)
		}
		n.txSeq++
		n.txOK++
		n.wire.tx = n.wire.tx.Add(n.cost.NICWireTime(ln))
		drained++
	}
}

// TXVerified returns how many transmitted frames passed integrity checks.
func (n *NIC) TXVerified() int { return n.txOK }

// fillPattern stamps deterministic, sequence-dependent bytes.
func fillPattern(p []byte, k int) {
	for i := range p {
		p[i] = byte(k*131 + i*7 + 3)
	}
}

func checkPattern(p []byte, k int) bool {
	for i := range p {
		if p[i] != byte(k*131+i*7+3) {
			return false
		}
	}
	return true
}
