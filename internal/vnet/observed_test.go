package vnet

import (
	"testing"

	"github.com/elisa-go/elisa/internal/obs"
	"github.com/elisa-go/elisa/internal/simtime"
)

// An observed ELISA backend records its descriptor-batch calls; the
// other schemes leave the recorder untouched.
func TestObservedBackendRecordsELISAOnly(t *testing.T) {
	rec := obs.NewRecorder(obs.Config{SampleEvery: 1})
	_, nic, b, err := BuildObservedBackend("elisa", rec)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := nic.GenerateRX(32, 256, simtime.Time(1<<40)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RecvBatch(32); err != nil {
		t.Fatal(err)
	}
	if _, err := b.SendBatch(8, 256); err != nil {
		t.Fatal(err)
	}
	if rec.SpansSeen() == 0 {
		t.Fatal("ELISA backend produced no spans")
	}
	if len(rec.Keys()) == 0 {
		t.Fatal("ELISA backend produced no latency series")
	}

	for _, scheme := range []string{"ivshmem", "vmcall", "vhost-net", "sriov"} {
		rec := obs.NewRecorder(obs.Config{SampleEvery: 1})
		_, nic, b, err := BuildObservedBackend(scheme, rec)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := nic.GenerateRX(8, 256, simtime.Time(1<<40)); err != nil {
			t.Fatal(err)
		}
		if _, err := b.RecvBatch(8); err != nil {
			t.Fatal(err)
		}
		if rec.SpansSeen() != 0 {
			t.Fatalf("%s: recorder saw %d spans, want 0", scheme, rec.SpansSeen())
		}
	}
}
