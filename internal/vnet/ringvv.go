package vnet

import (
	"fmt"

	"github.com/elisa-go/elisa/internal/core"
	"github.com/elisa-go/elisa/internal/cpu"
	"github.com/elisa-go/elisa/internal/hv"
	"github.com/elisa-go/elisa/internal/shm"
	"github.com/elisa-go/elisa/internal/simtime"
	"github.com/elisa-go/elisa/internal/stats"
)

// Manager functions of the ring-datapath VM-to-VM variant. Unlike
// FnVVSend/FnVVRecv (which take counts and walk the whole exchange
// inside one call), these operate on a single frame staged at an
// explicit exchange offset — the natural unit for a call-ring
// descriptor, which carries the offset in its argument words.
const (
	FnVVSendAt uint64 = 0x4E45_0105
	FnVVRecvAt uint64 = 0x4E45_0106
)

// RingVVConfig configures NewRingVVPath.
type RingVVConfig struct {
	// Ring is the attachment call-ring geometry and batching policy for
	// both sides (zero values pick core defaults: depth 64, flush on
	// every submit).
	Ring core.RingConfig
	// MaxFrame caps the frame size this path can carry and sets the
	// exchange staging stride (0 picks 256 bytes). Smaller strides fit
	// more in-flight frames in the 32 KiB exchange buffer.
	MaxFrame int
}

// DefaultMaxFrame is the staging slot size RingVVConfig zero values pick.
const DefaultMaxFrame = 256

// RingVVPath is the exit-less ring datapath: both guests drive their
// attachment's call ring instead of taking one gate crossing per
// Send/Recv batch. Each frame becomes one descriptor (FnVVSendAt or
// FnVVRecvAt with its staging offset); the adaptive policy in
// core.RingCaller decides when a gate crossing actually happens, so at
// batch depth N the 196 ns crossing is amortised over N frames — or
// never taken at all when a manager-side poller drains the ring first.
type RingVVPath struct {
	h        *hv.Hypervisor
	mgr      *core.Manager
	a, b     *core.Guest
	hA, hB   *core.Handle
	rcA, rcB *core.RingCaller
	rings    map[ringViewKey]*shm.Ring

	stride  int // staging slot size in the exchange buffer
	windowA int // concurrent in-flight frames per side
	windowB int

	// Sender-side in-flight bookkeeping: staging cursor, outstanding
	// count, and FIFO submit stamps for latency measurement.
	slotA, outA int
	stampsA     []simtime.Time
	harvested   int // frames confirmed sent by the last harvest window

	// Receiver side mirrors the sender, plus the FIFO of staged offsets
	// whose completions carry the frame lengths.
	slotB, outB int
	stampsB     []simtime.Time
	offsB       []int

	txSeq int
	rxSeq int

	// txLat and rxLat record per-frame guest-clock latency from Submit to
	// harvested completion — the number the batching experiment's p99
	// column reports.
	txLat *stats.Histogram
	rxLat *stats.Histogram

	comps []shm.Comp // scratch completion buffer
}

// NewRingVVPath publishes the forwarding ring as a manager object
// ("vv-ring", like ELISAVVPath — use a separate manager per path),
// attaches both guests, and negotiates a call ring on each attachment.
func NewRingVVPath(h *hv.Hypervisor, mgr *core.Manager, a, b *core.Guest, cfg RingVVConfig) (*RingVVPath, error) {
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = DefaultMaxFrame
	}
	if cfg.MaxFrame > SlotBytes {
		return nil, fmt.Errorf("vnet: ring vv: max frame %d exceeds payload slot size %d", cfg.MaxFrame, SlotBytes)
	}
	region, _, err := newVVRing(h)
	if err != nil {
		return nil, err
	}
	p := &RingVVPath{
		h:     h,
		mgr:   mgr,
		a:     a,
		b:     b,
		rings: make(map[ringViewKey]*shm.Ring),
		txLat: stats.NewHistogram(),
		rxLat: stats.NewHistogram(),
	}
	p.stride = (cfg.MaxFrame + 7) &^ 7
	if _, err := mgr.CreateObjectFromRegion("vv-ring", region); err != nil {
		return nil, err
	}
	if err := mgr.RegisterFunc(FnVVSendAt, p.fnSendAt); err != nil {
		return nil, err
	}
	if err := mgr.RegisterFunc(FnVVRecvAt, p.fnRecvAt); err != nil {
		return nil, err
	}
	if p.hA, err = a.Attach("vv-ring"); err != nil {
		return nil, err
	}
	if p.hB, err = b.Attach("vv-ring"); err != nil {
		return nil, err
	}
	if p.rcA, err = p.hA.Ring(a.VM().VCPU(), cfg.Ring); err != nil {
		return nil, err
	}
	if p.rcB, err = p.hB.Ring(b.VM().VCPU(), cfg.Ring); err != nil {
		return nil, err
	}
	window := func(h *core.Handle, rc *core.RingCaller) int {
		w := h.ExchangeSize() / p.stride
		if w > rc.Depth() {
			w = rc.Depth()
		}
		if w < 1 {
			w = 1
		}
		return w
	}
	p.windowA = window(p.hA, p.rcA)
	p.windowB = window(p.hB, p.rcB)
	p.comps = make([]shm.Comp, p.windowA+p.windowB)
	return p, nil
}

// Name implements VVPath.
func (p *RingVVPath) Name() string { return "elisa-ring" }

// Sender implements VVPath.
func (p *RingVVPath) Sender() *hv.VM { return p.a.VM() }

// Receiver implements VVPath.
func (p *RingVVPath) Receiver() *hv.VM { return p.b.VM() }

// SenderRing and ReceiverRing expose the underlying ring callers, so
// harnesses and experiments can flush, poll, or read ring state directly.
func (p *RingVVPath) SenderRing() *core.RingCaller { return p.rcA }

// ReceiverRing is SenderRing's counterpart for the receiving guest.
func (p *RingVVPath) ReceiverRing() *core.RingCaller { return p.rcB }

// TxLatency and RxLatency return snapshots of the per-frame
// submit-to-completion latency distributions.
func (p *RingVVPath) TxLatency() *stats.Histogram { return p.txLat.Clone() }

// RxLatency is TxLatency's counterpart for the receive side.
func (p *RingVVPath) RxLatency() *stats.Histogram { return p.rxLat.Clone() }

// RingStats reports the manager-side counters of both attachment rings
// (descriptor counts, gate crossings, batch-size percentiles).
func (p *RingVVPath) RingStats() []core.RingStats { return p.mgr.RingStats() }

func (p *RingVVPath) ringFor(ctx *core.CallContext) (*shm.Ring, error) {
	key := ringViewKey{ctx.VCPU, ctx.Object}
	if r, ok := p.rings[key]; ok {
		return r, nil
	}
	w, err := shm.NewGPAWindow(ctx.VCPU, ctx.Object, ctx.ObjectSize)
	if err != nil {
		return nil, err
	}
	r, err := shm.OpenRing(w)
	if err != nil {
		return nil, err
	}
	p.rings[key] = r
	return r, nil
}

// fnSendAt forwards one staged frame: args = (exchange offset, size).
// Returns 1 if the frame entered the payload ring, 0 if the ring was
// full (the frame is dropped and the sender retries it as a fresh
// submission).
func (p *RingVVPath) fnSendAt(ctx *core.CallContext) (uint64, error) {
	off, size := int(ctx.Args[0]), int(ctx.Args[1])
	if size <= 0 || size > p.stride || off < 0 || off+size > ctx.ExchangeSize {
		return 0, fmt.Errorf("vnet: ring vv send: bad staging (off %d size %d)", off, size)
	}
	ring, err := p.ringFor(ctx)
	if err != nil {
		return 0, err
	}
	ctx.VCPU.Charge(mgrExtra)
	buf := make([]byte, size)
	if err := ctx.ReadExchange(off, buf); err != nil {
		return 0, err
	}
	ok, err := ring.Push(buf)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, nil
	}
	return 1, nil
}

// fnRecvAt pops one frame into the exchange at args[0] (capacity
// args[1]); the return value is the frame length, 0 when the payload
// ring is empty.
func (p *RingVVPath) fnRecvAt(ctx *core.CallContext) (uint64, error) {
	off, max := int(ctx.Args[0]), int(ctx.Args[1])
	if max <= 0 || off < 0 || off+max > ctx.ExchangeSize {
		return 0, fmt.Errorf("vnet: ring vv recv: bad staging (off %d max %d)", off, max)
	}
	ring, err := p.ringFor(ctx)
	if err != nil {
		return 0, err
	}
	ctx.VCPU.Charge(mgrExtra)
	buf := make([]byte, SlotBytes)
	n, ok, err := ring.Pop(buf)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, nil
	}
	if n > max {
		return 0, fmt.Errorf("vnet: ring vv recv: frame of %d bytes exceeds staging slot %d", n, max)
	}
	if err := ctx.WriteExchange(off, buf[:n]); err != nil {
		return 0, err
	}
	return uint64(n), nil
}

// harvestTx flushes and polls until every outstanding send descriptor
// has completed, recording per-frame latency and counting confirmed
// sends into p.harvested.
func (p *RingVVPath) harvestTx(v *cpu.VCPU) error {
	for p.outA > 0 {
		n, err := p.rcA.Poll(v, p.comps[:min(p.outA, len(p.comps))])
		if err != nil {
			return err
		}
		if n == 0 {
			// Nothing drained yet: take the gate ourselves. If a manager
			// poller raced us the flush finds an empty queue and costs
			// nothing; completions then show up on the next poll.
			if err := p.rcA.Flush(v); err != nil {
				return err
			}
			continue
		}
		now := v.Clock().Now()
		for i := 0; i < n; i++ {
			p.txLat.RecordDuration(now.Sub(p.stampsA[i]))
			if p.comps[i].Status == shm.CompOK && p.comps[i].Ret == 1 {
				p.harvested++
			}
		}
		p.stampsA = p.stampsA[n:]
		p.outA -= n
	}
	p.stampsA = p.stampsA[:0]
	return nil
}

// Send implements VVPath: each frame is staged in the exchange buffer
// and submitted as one ring descriptor. The in-flight window is bounded
// by the staging capacity and ring depth; crossing the window harvests
// completions before reusing slots.
func (p *RingVVPath) Send(count, size int) (int, error) {
	if size > p.stride {
		return 0, fmt.Errorf("vnet: ring vv: frame size %d exceeds staging stride %d", size, p.stride)
	}
	v := p.a.VM().VCPU()
	p.harvested = 0
	buf := make([]byte, size)
	for i := 0; i < count; i++ {
		if p.outA >= p.windowA {
			if err := p.harvestTx(v); err != nil {
				return p.harvested, err
			}
		}
		off := p.slotA * p.stride
		p.slotA = (p.slotA + 1) % p.windowA
		v.ChargeInstr(driverInstr)
		fillPattern(buf, p.txSeq+i)
		if err := p.hA.ExchangeWrite(v, off, buf); err != nil {
			return p.harvested, err
		}
		p.stampsA = append(p.stampsA, v.Clock().Now())
		if err := p.rcA.Submit(v, FnVVSendAt, uint64(off), uint64(size)); err != nil {
			return p.harvested, err
		}
		p.outA++
	}
	if err := p.harvestTx(v); err != nil {
		return p.harvested, err
	}
	p.txSeq += p.harvested
	return p.harvested, nil
}

// harvestRx drains outstanding receive descriptors: each completion's
// Ret is the frame length staged at the matching FIFO offset. Frames
// are verified against the expected pattern as they land.
func (p *RingVVPath) harvestRx(v *cpu.VCPU) (int, error) {
	got := 0
	buf := make([]byte, p.stride)
	for p.outB > 0 {
		n, err := p.rcB.Poll(v, p.comps[:min(p.outB, len(p.comps))])
		if err != nil {
			return got, err
		}
		if n == 0 {
			if err := p.rcB.Flush(v); err != nil {
				return got, err
			}
			continue
		}
		now := v.Clock().Now()
		for i := 0; i < n; i++ {
			off := p.offsB[i]
			p.rxLat.RecordDuration(now.Sub(p.stampsB[i]))
			c := p.comps[i]
			if c.Status != shm.CompOK {
				return got, fmt.Errorf("vnet: ring vv: recv descriptor failed")
			}
			fl := int(c.Ret)
			if fl == 0 {
				continue // payload ring was empty when this descriptor ran
			}
			if fl > p.stride {
				return got, fmt.Errorf("vnet: ring vv: bad staged length %d", fl)
			}
			v.ChargeInstr(vvAppInstr)
			if err := p.hB.ExchangeRead(v, off, buf[:fl]); err != nil {
				return got, err
			}
			if !checkPattern(buf[:fl], p.rxSeq) {
				return got, fmt.Errorf("vnet: ring vv: frame %d corrupted", p.rxSeq)
			}
			p.rxSeq++
			got++
		}
		p.offsB = p.offsB[n:]
		p.stampsB = p.stampsB[n:]
		p.outB -= n
	}
	p.offsB = p.offsB[:0]
	p.stampsB = p.stampsB[:0]
	return got, nil
}

// Recv implements VVPath: submit one FnVVRecvAt descriptor per frame
// wanted, then harvest the completions (whose Ret values carry the
// frame lengths).
func (p *RingVVPath) Recv(max int) (int, error) {
	v := p.b.VM().VCPU()
	got := 0
	for i := 0; i < max; i++ {
		if p.outB >= p.windowB {
			n, err := p.harvestRx(v)
			got += n
			if err != nil {
				return got, err
			}
		}
		off := p.slotB * p.stride
		p.slotB = (p.slotB + 1) % p.windowB
		v.ChargeInstr(driverInstr)
		p.offsB = append(p.offsB, off)
		p.stampsB = append(p.stampsB, v.Clock().Now())
		if err := p.rcB.Submit(v, FnVVRecvAt, uint64(off), uint64(p.stride)); err != nil {
			return got, err
		}
		p.outB++
	}
	n, err := p.harvestRx(v)
	got += n
	return got, err
}
