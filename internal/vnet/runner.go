package vnet

import (
	"fmt"

	"github.com/elisa-go/elisa/internal/simtime"
	"github.com/elisa-go/elisa/internal/stats"
)

// Batch sizes of the I/O paths — calibration parameters of the model (see
// EXPERIMENTS.md): NIC drivers process descriptor rings in batches (NAPI
// style), while VM-to-VM forwarding flushes eagerly to keep latency low,
// which is why its per-batch switch costs bite so much harder — the
// regime where the paper measures ELISA's biggest win (+163%).
const (
	// BatchNIC is the RX/TX descriptor batch.
	BatchNIC = 16
	// BatchVV is the VM-to-VM flush batch.
	BatchVV = 2
)

// RingDepthBackpressure is how far (in frames) a TX producer may run
// ahead of the wire before the full ring stalls it.
const RingDepthBackpressure = RingSlots

// Result is one throughput measurement point.
type Result struct {
	Scheme  string
	Size    int
	Packets int
	Elapsed simtime.Duration
	Mpps    float64
}

// RunRX measures receive throughput with the default descriptor batch.
func RunRX(nic *NIC, b Backend, size, total int) (*Result, error) {
	return RunRXBatch(nic, b, size, total, BatchNIC)
}

// RunRXBatch measures receive throughput: the wire delivers frames at
// line rate into the NIC RX ring; the backend moves them into the guest
// in batches of `batch` descriptors.
func RunRXBatch(nic *NIC, b Backend, size, total, batch int) (*Result, error) {
	if total <= 0 || batch <= 0 {
		return nil, fmt.Errorf("vnet: total %d / batch %d must be positive", total, batch)
	}
	v := b.Guest().VCPU()
	start := v.Clock().Now()
	wireStep := v.Cost().NICWireTime(size)
	received := 0
	for received < total {
		if _, wireT, err := nic.GenerateRX(total-received, size, v.Clock().Now()); err != nil {
			return nil, err
		} else if got, err := b.RecvBatch(min(batch, total-received)); err != nil {
			return nil, err
		} else if got == 0 {
			// Nothing had arrived yet: poll until a batch is on the wire
			// (interrupt-coalescing behaviour).
			next := wireT.Add(wireStep * simtime.Duration(min(batch, total-received)))
			v.Clock().AdvanceTo(next)
		} else {
			received += got
		}
	}
	elapsed := v.Clock().Elapsed(start)
	return &Result{
		Scheme:  b.Name(),
		Size:    size,
		Packets: total,
		Elapsed: elapsed,
		Mpps:    stats.Throughput(int64(total), elapsed) / 1e6,
	}, nil
}

// RunTX measures transmit throughput: the backend moves guest frames into
// the NIC TX ring; the wire drains at line rate with ring-depth
// backpressure. The rate is measured at the wire.
func RunTX(nic *NIC, b Backend, size, total int) (*Result, error) {
	if total <= 0 {
		return nil, fmt.Errorf("vnet: total %d must be positive", total)
	}
	v := b.Guest().VCPU()
	start := v.Clock().Now()
	wireStep := v.Cost().NICWireTime(size)
	sent := 0
	var wireEnd simtime.Time
	for sent < total {
		n, err := b.SendBatch(min(BatchNIC, total-sent), size)
		if err != nil {
			return nil, err
		}
		drained, wt, err := nic.DrainTX(start)
		if err != nil {
			return nil, err
		}
		wireEnd = wt
		_ = drained
		if n == 0 {
			// Ring full (cannot happen with instant drain, but keep the
			// model honest if drain semantics change).
			v.Clock().AdvanceTo(wireEnd)
			continue
		}
		sent += n
		// Backpressure: the producer may lead the wire by one ring.
		lead := wireEnd.Sub(v.Clock().Now())
		maxLead := wireStep * simtime.Duration(RingDepthBackpressure)
		if lead > maxLead {
			v.Clock().AdvanceTo(wireEnd.Add(-maxLead))
		}
	}
	end := v.Clock().Now()
	if wireEnd > end {
		end = wireEnd
	}
	elapsed := end.Sub(start)
	return &Result{
		Scheme:  b.Name(),
		Size:    size,
		Packets: total,
		Elapsed: elapsed,
		Mpps:    stats.Throughput(int64(total), elapsed) / 1e6,
	}, nil
}

// RunVV measures VM-to-VM forwarding throughput: A produces, B consumes,
// in pipelined alternation (B processes batch k while A produces k+1).
// The rate is measured at the receiver.
func RunVV(p VVPath, size, total int) (*Result, error) {
	return RunVVBatch(p, size, total, BatchVV)
}

// RunVVBatch is RunVV with an explicit frames-per-Send batch — the knob
// the ring-batching experiment sweeps, since a ring path flushes (at
// most) once per Send call and so batches up to min(batch, ring depth)
// descriptors per gate crossing.
func RunVVBatch(p VVPath, size, total, batch int) (*Result, error) {
	if total <= 0 || batch <= 0 {
		return nil, fmt.Errorf("vnet: total %d / batch %d must be positive", total, batch)
	}
	a := p.Sender().VCPU()
	bcpu := p.Receiver().VCPU()
	start := bcpu.Clock().Now()
	if t := a.Clock().Now(); t > start {
		start = t
	}
	sent, recv := 0, 0
	for recv < total {
		if sent < total {
			n, err := p.Send(min(batch, total-sent), size)
			if err != nil {
				return nil, err
			}
			sent += n
		}
		// Frames become visible to B no earlier than A produced them.
		bcpu.Clock().AdvanceTo(a.Clock().Now())
		got, err := p.Recv(min(batch, total-recv))
		if err != nil {
			return nil, err
		}
		recv += got
		if got == 0 && sent >= total {
			return nil, fmt.Errorf("vnet: %s vv: receiver starved with %d/%d", p.Name(), recv, total)
		}
	}
	elapsed := bcpu.Clock().Elapsed(start)
	return &Result{
		Scheme:  p.Name(),
		Size:    size,
		Packets: total,
		Elapsed: elapsed,
		Mpps:    stats.Throughput(int64(total), elapsed) / 1e6,
	}, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
