package vnet

import (
	"fmt"

	"github.com/elisa-go/elisa/internal/core"
	"github.com/elisa-go/elisa/internal/hv"
	"github.com/elisa-go/elisa/internal/mem"
	"github.com/elisa-go/elisa/internal/obs"
)

// Schemes lists the five backends of the paper's networking figures, in
// plot order.
var Schemes = []string{"ivshmem", "vmcall", "elisa", "vhost-net", "sriov"}

// guestRAM is the RAM given to networking guests (staging areas included).
const guestRAM = 64 * mem.PageSize

// physBytes is the machine size used by the networking experiments.
const physBytes = 256 * 1024 * 1024

// BuildBackend assembles a fresh machine — hypervisor, NIC, one guest —
// wired through the named scheme. Each call builds an isolated world, so
// schemes never share hypercall tables or rings.
func BuildBackend(scheme string) (*hv.Hypervisor, *NIC, Backend, error) {
	return BuildObservedBackend(scheme, nil)
}

// BuildObservedBackend is BuildBackend with a flight recorder attached to
// the ELISA manager, so the descriptor-batch calls of the elisa backend
// populate latency histograms and sampled spans. The recorder is ignored
// by the other schemes; nil behaves exactly like BuildBackend.
func BuildObservedBackend(scheme string, rec *obs.Recorder) (*hv.Hypervisor, *NIC, Backend, error) {
	h, err := hv.New(hv.Config{PhysBytes: physBytes})
	if err != nil {
		return nil, nil, nil, err
	}
	nic, err := NewNIC(h)
	if err != nil {
		return nil, nil, nil, err
	}
	vm, err := h.CreateVM("net-guest", guestRAM)
	if err != nil {
		return nil, nil, nil, err
	}
	var b Backend
	switch scheme {
	case "ivshmem":
		b, err = NewDirectBackend(h, nic, vm)
	case "sriov":
		b, err = NewSRIOVBackend(h, nic, vm)
	case "vmcall":
		b, err = NewVMCallBackend(h, nic, vm)
	case "vhost-net":
		b, err = NewVhostBackend(h, nic, vm)
	case "elisa":
		mgr, merr := core.NewManager(h, core.ManagerConfig{})
		if merr != nil {
			return nil, nil, nil, merr
		}
		mgr.SetRecorder(rec)
		g, gerr := core.NewGuest(vm, mgr)
		if gerr != nil {
			return nil, nil, nil, gerr
		}
		b, err = NewELISABackend(h, mgr, nic, g)
	default:
		return nil, nil, nil, fmt.Errorf("vnet: unknown scheme %q", scheme)
	}
	if err != nil {
		return nil, nil, nil, err
	}
	return h, nic, b, nil
}

// BuildRingVVPath assembles a fresh machine with two guests wired
// through the exit-less ring datapath ("elisa-ring"): same topology as
// BuildVVPath("elisa"), but both guests drive attachment call rings
// instead of one gate crossing per Send/Recv batch.
func BuildRingVVPath(cfg RingVVConfig) (*RingVVPath, error) {
	h, err := hv.New(hv.Config{PhysBytes: physBytes})
	if err != nil {
		return nil, err
	}
	a, err := h.CreateVM("vm-a", guestRAM)
	if err != nil {
		return nil, err
	}
	b, err := h.CreateVM("vm-b", guestRAM)
	if err != nil {
		return nil, err
	}
	mgr, err := core.NewManager(h, core.ManagerConfig{})
	if err != nil {
		return nil, err
	}
	ga, err := core.NewGuest(a, mgr)
	if err != nil {
		return nil, err
	}
	gb, err := core.NewGuest(b, mgr)
	if err != nil {
		return nil, err
	}
	return NewRingVVPath(h, mgr, ga, gb, cfg)
}

// BuildVVPath assembles a fresh machine with two guests wired through the
// named VM-to-VM scheme.
func BuildVVPath(scheme string) (VVPath, error) {
	h, err := hv.New(hv.Config{PhysBytes: physBytes})
	if err != nil {
		return nil, err
	}
	a, err := h.CreateVM("vm-a", guestRAM)
	if err != nil {
		return nil, err
	}
	b, err := h.CreateVM("vm-b", guestRAM)
	if err != nil {
		return nil, err
	}
	switch scheme {
	case "ivshmem":
		return NewDirectVVPath(h, a, b)
	case "sriov":
		return NewSRIOVVVPath(h, a, b)
	case "vmcall":
		return NewVMCallVVPath(h, a, b)
	case "vhost-net":
		return NewVhostVVPath(h, a, b)
	case "elisa":
		mgr, err := core.NewManager(h, core.ManagerConfig{})
		if err != nil {
			return nil, err
		}
		ga, err := core.NewGuest(a, mgr)
		if err != nil {
			return nil, err
		}
		gb, err := core.NewGuest(b, mgr)
		if err != nil {
			return nil, err
		}
		return NewELISAVVPath(h, mgr, ga, gb)
	default:
		return nil, fmt.Errorf("vnet: unknown scheme %q", scheme)
	}
}
