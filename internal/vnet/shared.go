package vnet

import (
	"fmt"

	"github.com/elisa-go/elisa/internal/core"
	"github.com/elisa-go/elisa/internal/hv"
	"github.com/elisa-go/elisa/internal/simtime"
	"github.com/elisa-go/elisa/internal/stats"
)

// SharedCluster is the HyperNF deployment shape: N guest VMs on one
// machine, each with its own NIC queue pair, all queues multiplexed onto
// one physical wire. The wire's line rate is the shared resource; the
// question the consolidation experiment asks is how many VMs each scheme
// needs (i.e. how much CPU it burns) to saturate it.
type SharedCluster struct {
	h        *hv.Hypervisor
	wire     *Wire
	nics     []*NIC
	backends []Backend
}

// BuildSharedCluster assembles n guests on one machine, one wire.
// Supported schemes: every entry of Schemes.
func BuildSharedCluster(scheme string, n int) (*SharedCluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("vnet: shared cluster needs at least one VM")
	}
	h, err := hv.New(hv.Config{PhysBytes: physBytes})
	if err != nil {
		return nil, err
	}
	c := &SharedCluster{h: h, wire: &Wire{}}

	var isvc *InterposedService
	var esvc *ELISANetService
	var mgr *core.Manager
	switch scheme {
	case "vmcall":
		if isvc, err = NewInterposedService(h, false); err != nil {
			return nil, err
		}
	case "vhost-net":
		if isvc, err = NewInterposedService(h, true); err != nil {
			return nil, err
		}
	case "elisa":
		if mgr, err = core.NewManager(h, core.ManagerConfig{}); err != nil {
			return nil, err
		}
		if esvc, err = NewELISANetService(h, mgr); err != nil {
			return nil, err
		}
	case "ivshmem", "sriov":
		// direct paths need no shared service
	default:
		return nil, fmt.Errorf("vnet: unknown scheme %q", scheme)
	}

	for i := 0; i < n; i++ {
		nic, err := NewNICOnWire(h, c.wire)
		if err != nil {
			return nil, err
		}
		vm, err := h.CreateVM(fmt.Sprintf("net-guest-%d", i), guestRAM)
		if err != nil {
			return nil, err
		}
		var b Backend
		switch scheme {
		case "ivshmem":
			b, err = NewDirectBackend(h, nic, vm)
		case "sriov":
			b, err = NewSRIOVBackend(h, nic, vm)
		case "vmcall", "vhost-net":
			b, err = isvc.NewBackend(vm, nic)
		case "elisa":
			var g *core.Guest
			if g, err = core.NewGuest(vm, mgr); err != nil {
				return nil, err
			}
			b, err = esvc.NewBackend(g, nic)
		}
		if err != nil {
			return nil, err
		}
		c.nics = append(c.nics, nic)
		c.backends = append(c.backends, b)
	}
	return c, nil
}

// VMs returns the cluster size.
func (c *SharedCluster) VMs() int { return len(c.backends) }

// SharedResult is one aggregate measurement.
type SharedResult struct {
	Scheme   string
	VMs      int
	Size     int
	AggMpps  float64
	LineMpps float64 // the wire's capacity at this size
}

// RunSharedRX drives receive traffic to every VM at once for a window of
// simulated time: the wire delivers frames round-robin across queues at
// line rate; each VM drains its own queue. The aggregate rate is bounded
// by min(Σ per-VM CPU rates, line rate) — the consolidation trade-off
// made measurable.
func (c *SharedCluster) RunSharedRX(size int, window simtime.Duration) (*SharedResult, error) {
	if window <= 0 {
		return nil, fmt.Errorf("vnet: window %v must be positive", window)
	}
	n := len(c.backends)
	received := 0
	cost := c.backends[0].Guest().VCPU().Cost()
	wireStep := cost.NICWireTime(size)
	deadline := simtime.Time(0).Add(window)

	for {
		progressed := false
		// Frames exist on the wire once *global* time has passed their
		// arrival; a lagging consumer's queue keeps filling while it is
		// busy, exactly like real DMA.
		var now simtime.Time
		for _, b := range c.backends {
			if t := b.Guest().VCPU().Clock().Now(); t > now {
				now = t
			}
		}
		for i, b := range c.backends {
			v := b.Guest().VCPU()
			if v.Clock().Now() >= deadline {
				continue
			}
			progressed = true
			if _, _, err := c.nics[i].GenerateRX(BatchNIC, size, now); err != nil {
				return nil, err
			}
			got, err := b.RecvBatch(BatchNIC)
			if err != nil {
				return nil, err
			}
			if got == 0 {
				// Wait for this queue's next batch; the shared wire is
				// also feeding the other queues meanwhile.
				v.Clock().AdvanceTo(c.wire.rx.Add(wireStep * simtime.Duration(BatchNIC)))
				continue
			}
			received += got
		}
		if !progressed {
			break
		}
	}
	return &SharedResult{
		Scheme:   c.backends[0].Name(),
		VMs:      n,
		Size:     size,
		AggMpps:  stats.Throughput(int64(received), window) / 1e6,
		LineMpps: 1e3 / float64(wireStep),
	}, nil
}
