package vnet

import (
	"testing"

	"github.com/elisa-go/elisa/internal/hv"
	"github.com/elisa-go/elisa/internal/simtime"
)

func TestNICGenerateRXRespectsDeadlineAndRate(t *testing.T) {
	h, err := hv.New(hv.Config{PhysBytes: 64 * 1024 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	nic, err := NewNIC(h)
	if err != nil {
		t.Fatal(err)
	}
	// At 64B the wire needs 67ns/frame: by t=670 exactly 10 frames fit.
	added, wireT, err := nic.GenerateRX(1000, 64, simtime.Time(670))
	if err != nil {
		t.Fatal(err)
	}
	if added != 10 {
		t.Fatalf("added %d frames by t=670, want 10", added)
	}
	if wireT != 670 {
		t.Fatalf("wire at %d", wireT)
	}
	// The ring caps the backlog.
	added, _, err = nic.GenerateRX(1000, 64, simtime.Time(1_000_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if added != RingSlots-10 {
		t.Fatalf("backlog %d, want ring capacity %d", added+10, RingSlots)
	}
	if _, _, err := nic.GenerateRX(1, 0, 0); err == nil {
		t.Fatal("size 0 accepted")
	}
	if _, _, err := nic.GenerateRX(1, SlotBytes+1, 0); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestNICDrainTXVerifiesAndTimes(t *testing.T) {
	h, _ := hv.New(hv.Config{PhysBytes: 64 * 1024 * 1024})
	nic, _ := NewNIC(h)
	vm, _ := h.CreateVM("g", guestRAM)
	b, err := NewDirectBackend(h, nic, vm)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.SendBatch(5, 128); err != nil {
		t.Fatal(err)
	}
	drained, wire, err := nic.DrainTX(0)
	if err != nil {
		t.Fatal(err)
	}
	if drained != 5 || nic.TXVerified() != 5 {
		t.Fatalf("drained=%d verified=%d", drained, nic.TXVerified())
	}
	want := simtime.Time(5 * int64(h.Cost().NICWireTime(128)))
	if wire != want {
		t.Fatalf("wire time %d, want %d", wire, want)
	}
}

func TestEachBackendMovesRealBytesRX(t *testing.T) {
	for _, scheme := range Schemes {
		t.Run(scheme, func(t *testing.T) {
			_, nic, b, err := BuildBackend(scheme)
			if err != nil {
				t.Fatal(err)
			}
			// Preload 32 frames "from the wire".
			if _, _, err := nic.GenerateRX(32, 256, simtime.Time(1<<40)); err != nil {
				t.Fatal(err)
			}
			got := 0
			for got < 32 {
				n, err := b.RecvBatch(BatchNIC)
				if err != nil {
					t.Fatal(err) // includes payload verification failures
				}
				if n == 0 {
					t.Fatalf("starved at %d/32", got)
				}
				got += n
			}
		})
	}
}

func TestEachBackendMovesRealBytesTX(t *testing.T) {
	for _, scheme := range Schemes {
		t.Run(scheme, func(t *testing.T) {
			_, nic, b, err := BuildBackend(scheme)
			if err != nil {
				t.Fatal(err)
			}
			sent := 0
			for sent < 32 {
				n, err := b.SendBatch(min(BatchNIC, 32-sent), 512)
				if err != nil {
					t.Fatal(err)
				}
				sent += n
			}
			drained, _, err := nic.DrainTX(0)
			if err != nil {
				t.Fatal(err) // includes integrity check
			}
			if drained != 32 || nic.TXVerified() != 32 {
				t.Fatalf("drained=%d verified=%d", drained, nic.TXVerified())
			}
		})
	}
}

func TestEachVVPathForwards(t *testing.T) {
	for _, scheme := range Schemes {
		t.Run(scheme, func(t *testing.T) {
			p, err := BuildVVPath(scheme)
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunVV(p, 128, 200)
			if err != nil {
				t.Fatal(err)
			}
			if res.Packets != 200 || res.Mpps <= 0 {
				t.Fatalf("result %+v", res)
			}
		})
	}
}

func TestELISABackendIsExitLess(t *testing.T) {
	_, nic, b, err := BuildBackend("elisa")
	if err != nil {
		t.Fatal(err)
	}
	_, _, _ = nic.GenerateRX(64, 64, simtime.Time(1<<40))
	v := b.Guest().VCPU()
	exits := v.Stats().Exits
	for i := 0; i < 4; i++ {
		if _, err := b.RecvBatch(16); err != nil {
			t.Fatal(err)
		}
		if _, err := b.SendBatch(16, 64); err != nil {
			t.Fatal(err)
		}
	}
	if v.Stats().Exits != exits {
		t.Fatalf("ELISA networking exited %d times", v.Stats().Exits-exits)
	}
}

// The paper's Figure shapes: at 64B, ivshmem ≈ SR-IOV ≈ line rate;
// ELISA ≈ +50% over VMCALL; VMCALL ≈ half of ivshmem (the -49%
// observation); vhost-net worst. At 1472B everyone converges on the wire.
func TestRXShapeMatchesPaper(t *testing.T) {
	rates := map[string]float64{}
	for _, scheme := range Schemes {
		_, nic, b, err := BuildBackend(scheme)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunRX(nic, b, 64, 4000)
		if err != nil {
			t.Fatal(err)
		}
		rates[scheme] = res.Mpps
	}
	t.Logf("RX 64B Mpps: %+v", rates)
	if rates["ivshmem"] < 13.5 || rates["ivshmem"] > 15.2 {
		t.Errorf("ivshmem 64B RX = %.2f Mpps, want ~line rate 14.88", rates["ivshmem"])
	}
	if r := rates["sriov"] / rates["ivshmem"]; r < 0.9 || r > 1.1 {
		t.Errorf("sriov/ivshmem = %.2f, want ~1", r)
	}
	if r := rates["elisa"] / rates["vmcall"]; r < 1.3 || r > 1.8 {
		t.Errorf("elisa/vmcall RX = %.2f, paper reports ~1.49", r)
	}
	if r := rates["vmcall"] / rates["ivshmem"]; r < 0.4 || r > 0.65 {
		t.Errorf("vmcall/ivshmem = %.2f, paper motivates ~0.51", r)
	}
	if rates["vhost-net"] >= rates["vmcall"] {
		t.Errorf("vhost-net (%.2f) should be below vmcall (%.2f)", rates["vhost-net"], rates["vmcall"])
	}
}

func TestLargePacketsConvergeOnLineRate(t *testing.T) {
	line := 1e3 / float64(simtime.Default().NICWireTime(1472)) // Mpps
	for _, scheme := range Schemes {
		_, nic, b, err := BuildBackend(scheme)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunRX(nic, b, 1472, 1500)
		if err != nil {
			t.Fatal(err)
		}
		if res.Mpps < 0.55*line {
			t.Errorf("%s 1472B RX = %.3f Mpps, line rate is %.3f — too far off", scheme, res.Mpps, line)
		}
	}
}

func TestVVShapeMatchesPaper(t *testing.T) {
	rates := map[string]float64{}
	for _, scheme := range Schemes {
		p, err := BuildVVPath(scheme)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunVV(p, 64, 4000)
		if err != nil {
			t.Fatal(err)
		}
		rates[scheme] = res.Mpps
	}
	t.Logf("VM-to-VM 64B Mpps: %+v", rates)
	if r := rates["elisa"]/rates["vmcall"] - 1; r < 1.2 || r > 3.2 {
		t.Errorf("elisa gain over vmcall = %.0f%%, paper reports +163%%", r*100)
	}
	if rates["ivshmem"] <= rates["elisa"] {
		t.Errorf("ivshmem (%.2f) must lead elisa (%.2f)", rates["ivshmem"], rates["elisa"])
	}
	if rates["vhost-net"] >= rates["vmcall"] {
		t.Errorf("vhost-net above vmcall")
	}
}

func TestTXShapeMatchesPaper(t *testing.T) {
	rates := map[string]float64{}
	for _, scheme := range Schemes {
		_, nic, b, err := BuildBackend(scheme)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunTX(nic, b, 64, 4000)
		if err != nil {
			t.Fatal(err)
		}
		rates[scheme] = res.Mpps
	}
	t.Logf("TX 64B Mpps: %+v", rates)
	if r := rates["elisa"] / rates["vmcall"]; r < 1.3 || r > 1.9 {
		t.Errorf("elisa/vmcall TX = %.2f, paper reports ~1.54", r)
	}
	if rates["ivshmem"] < 13.5 {
		t.Errorf("ivshmem TX = %.2f, want ~line rate", rates["ivshmem"])
	}
}

func TestRunValidation(t *testing.T) {
	_, nic, b, _ := BuildBackend("ivshmem")
	if _, err := RunRX(nic, b, 64, 0); err == nil {
		t.Error("RunRX total 0 accepted")
	}
	if _, err := RunTX(nic, b, 64, -1); err == nil {
		t.Error("RunTX negative total accepted")
	}
	p, _ := BuildVVPath("ivshmem")
	if _, err := RunVV(p, 64, 0); err == nil {
		t.Error("RunVV total 0 accepted")
	}
	if _, _, _, err := BuildBackend("bogus"); err == nil {
		t.Error("bogus scheme accepted")
	}
	if _, err := BuildVVPath("bogus"); err == nil {
		t.Error("bogus vv scheme accepted")
	}
}

func TestTXConvergesOnLineRateAtMTU(t *testing.T) {
	line := 1e3 / float64(simtime.Default().NICWireTime(1472)) // Mpps
	for _, scheme := range Schemes {
		_, nic, b, err := BuildBackend(scheme)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunTX(nic, b, 1472, 1500)
		if err != nil {
			t.Fatal(err)
		}
		if res.Mpps < 0.55*line || res.Mpps > 1.05*line {
			t.Errorf("%s 1472B TX = %.3f Mpps, line %.3f", scheme, res.Mpps, line)
		}
	}
}

func TestNetworkingIsDeterministic(t *testing.T) {
	run := func() (float64, float64) {
		_, nic, b, err := BuildBackend("elisa")
		if err != nil {
			t.Fatal(err)
		}
		rx, err := RunRX(nic, b, 256, 1000)
		if err != nil {
			t.Fatal(err)
		}
		p, err := BuildVVPath("vmcall")
		if err != nil {
			t.Fatal(err)
		}
		vv, err := RunVV(p, 256, 1000)
		if err != nil {
			t.Fatal(err)
		}
		return rx.Mpps, vv.Mpps
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Fatalf("nondeterministic: (%v,%v) vs (%v,%v)", a1, b1, a2, b2)
	}
}

func TestSharedClusterValidation(t *testing.T) {
	if _, err := BuildSharedCluster("elisa", 0); err == nil {
		t.Error("zero VMs accepted")
	}
	if _, err := BuildSharedCluster("bogus", 1); err == nil {
		t.Error("bogus scheme accepted")
	}
	c, err := BuildSharedCluster("elisa", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunSharedRX(64, 0); err == nil {
		t.Error("zero window accepted")
	}
}

// Consolidation: one VMCALL VM cannot saturate the wire; adding VMs
// closes the gap. ELISA saturates with fewer VMs — the paper's CPU
// efficiency argument, aggregated.
func TestSharedNICConsolidation(t *testing.T) {
	agg := func(scheme string, vms int) float64 {
		c, err := BuildSharedCluster(scheme, vms)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.RunSharedRX(64, 200*simtime.Microsecond)
		if err != nil {
			t.Fatal(err)
		}
		return res.AggMpps
	}
	line := 1e3 / float64(simtime.Default().NICWireTime(64))

	e1, e2 := agg("elisa", 1), agg("elisa", 2)
	v1, v2 := agg("vmcall", 1), agg("vmcall", 2)
	t.Logf("aggregate 64B Mpps: elisa 1VM=%.2f 2VM=%.2f; vmcall 1VM=%.2f 2VM=%.2f (line %.2f)", e1, e2, v1, v2, line)

	// Single-VM: elisa close to line rate, vmcall far below.
	if e1 < 0.7*line {
		t.Errorf("elisa 1VM = %.2f, want near line %.2f", e1, line)
	}
	if v1 > 0.65*line {
		t.Errorf("vmcall 1VM = %.2f, unexpectedly near line", v1)
	}
	// Two VMCALL VMs saturate what one could not.
	if v2 < 1.5*v1 {
		t.Errorf("vmcall did not scale with a second VM: %.2f -> %.2f", v1, v2)
	}
	if v2 > 1.05*line || e2 > 1.05*line {
		t.Errorf("aggregate exceeded the wire: vmcall=%.2f elisa=%.2f line=%.2f", v2, e2, line)
	}
	// Each scheme's multi-VM aggregate approaches line rate.
	if e2 < 0.85*line || v2 < 0.85*line {
		t.Errorf("2-VM aggregates below wire: elisa=%.2f vmcall=%.2f", e2, v2)
	}
}

// Five schemes all work in the shared deployment and move verified bytes.
func TestSharedClusterAllSchemes(t *testing.T) {
	for _, scheme := range Schemes {
		t.Run(scheme, func(t *testing.T) {
			c, err := BuildSharedCluster(scheme, 3)
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.RunSharedRX(256, 50*simtime.Microsecond)
			if err != nil {
				t.Fatal(err)
			}
			if res.VMs != 3 || res.AggMpps <= 0 {
				t.Fatalf("result %+v", res)
			}
		})
	}
}
