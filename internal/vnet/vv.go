package vnet

import (
	"fmt"

	"github.com/elisa-go/elisa/internal/core"
	"github.com/elisa-go/elisa/internal/cpu"
	"github.com/elisa-go/elisa/internal/ept"
	"github.com/elisa-go/elisa/internal/hv"
	"github.com/elisa-go/elisa/internal/mem"
	"github.com/elisa-go/elisa/internal/shm"
	"github.com/elisa-go/elisa/internal/simtime"
)

// VVPath is a VM-to-VM forwarding path: guest A produces frames, guest B
// consumes them, and the scheme in the middle decides who pays which
// context switches.
type VVPath interface {
	// Name is the scheme label.
	Name() string
	// Sender and Receiver return the two guests.
	Sender() *hv.VM
	Receiver() *hv.VM
	// Send produces and forwards count frames of size bytes from A.
	Send(count, size int) (int, error)
	// Recv consumes and verifies up to max frames at B.
	Recv(max int) (int, error)
}

// Hypercalls and manager functions of the VM-to-VM services.
const (
	HCVVSend uint64 = 0x4E450003
	HCVVRecv uint64 = 0x4E450004

	FnVVSend uint64 = 0x4E45_0103
	FnVVRecv uint64 = 0x4E45_0104
)

// newVVRing allocates the shared forwarding ring.
func newVVRing(h *hv.Hypervisor) (*hv.HostRegion, *shm.Ring, error) {
	region, err := h.AllocHostRegion(shm.RingBytes(RingSlots, SlotBytes))
	if err != nil {
		return nil, nil, err
	}
	w, err := shm.NewHostWindow(region, nil)
	if err != nil {
		return nil, nil, err
	}
	ring, err := shm.InitRing(w, RingSlots, SlotBytes)
	if err != nil {
		return nil, nil, err
	}
	return region, ring, nil
}

// ---------------------------------------------------------------------------
// Direct (ivshmem) VM-to-VM: one ring mapped into both guests.

// DirectVVPath is the no-isolation baseline: both guests map the ring.
type DirectVVPath struct {
	a, b  *hv.VM
	ringA *shm.Ring
	ringB *shm.Ring
	txSeq int
	rxSeq int
}

// NewDirectVVPath direct-maps a fresh shared ring into both guests.
func NewDirectVVPath(h *hv.Hypervisor, a, b *hv.VM) (*DirectVVPath, error) {
	region, _, err := newVVRing(h)
	if err != nil {
		return nil, err
	}
	open := func(vm *hv.VM) (*shm.Ring, error) {
		gpa, err := region.MapIntoDefault(vm, ept.PermRW)
		if err != nil {
			return nil, err
		}
		w, err := shm.NewGPAWindow(vm.VCPU(), gpa, region.Size())
		if err != nil {
			return nil, err
		}
		return shm.OpenRing(w)
	}
	ra, err := open(a)
	if err != nil {
		return nil, err
	}
	rb, err := open(b)
	if err != nil {
		return nil, err
	}
	return &DirectVVPath{a: a, b: b, ringA: ra, ringB: rb}, nil
}

// Name implements VVPath.
func (p *DirectVVPath) Name() string { return "ivshmem" }

// Sender implements VVPath.
func (p *DirectVVPath) Sender() *hv.VM { return p.a }

// Receiver implements VVPath.
func (p *DirectVVPath) Receiver() *hv.VM { return p.b }

// Send implements VVPath.
func (p *DirectVVPath) Send(count, size int) (int, error) {
	v := p.a.VCPU()
	buf := make([]byte, size)
	sent := 0
	for sent < count {
		v.ChargeInstr(driverInstr)
		v.Charge(v.Cost().CopyCost(size))
		fillPattern(buf, p.txSeq)
		ok, err := p.ringA.Push(buf)
		if err != nil {
			return sent, err
		}
		if !ok {
			break
		}
		p.txSeq++
		sent++
	}
	return sent, nil
}

// Recv implements VVPath.
func (p *DirectVVPath) Recv(max int) (int, error) {
	v := p.b.VCPU()
	buf := make([]byte, SlotBytes)
	got := 0
	for got < max {
		v.ChargeInstr(driverInstr + vvAppInstr)
		n, ok, err := p.ringB.Pop(buf)
		if err != nil {
			return got, err
		}
		if !ok {
			break
		}
		if !checkPattern(buf[:n], p.rxSeq) {
			return got, fmt.Errorf("vnet: ivshmem vv: frame %d corrupted", p.rxSeq)
		}
		p.rxSeq++
		got++
	}
	return got, nil
}

// ---------------------------------------------------------------------------
// Interposed (VMCALL / vhost-net) VM-to-VM: the ring is host private;
// both sides exit per batch.

// InterposedVVPath models VMCALL or vhost-net forwarding.
type InterposedVVPath struct {
	name  string
	h     *hv.Hypervisor
	a, b  *hv.VM
	ring  *hv.HostRegion
	vhost bool
	txSeq int
	rxSeq int
}

// NewVMCallVVPath builds the VMCALL forwarding path.
func NewVMCallVVPath(h *hv.Hypervisor, a, b *hv.VM) (*InterposedVVPath, error) {
	return newInterposedVV("vmcall", h, a, b, false)
}

// NewVhostVVPath builds the vhost-net forwarding path.
func NewVhostVVPath(h *hv.Hypervisor, a, b *hv.VM) (*InterposedVVPath, error) {
	return newInterposedVV("vhost-net", h, a, b, true)
}

func newInterposedVV(name string, h *hv.Hypervisor, a, b *hv.VM, vhost bool) (*InterposedVVPath, error) {
	region, _, err := newVVRing(h)
	if err != nil {
		return nil, err
	}
	p := &InterposedVVPath{name: name, h: h, a: a, b: b, ring: region, vhost: vhost}
	if err := h.RegisterHypercall(HCVVSend, p.hcSend); err != nil {
		return nil, err
	}
	if err := h.RegisterHypercall(HCVVRecv, p.hcRecv); err != nil {
		return nil, err
	}
	return p, nil
}

// Name implements VVPath.
func (p *InterposedVVPath) Name() string { return p.name }

// Sender implements VVPath.
func (p *InterposedVVPath) Sender() *hv.VM { return p.a }

// Receiver implements VVPath.
func (p *InterposedVVPath) Receiver() *hv.VM { return p.b }

func (p *InterposedVVPath) perPkt() simtime.Duration {
	if p.vhost {
		return hostExtra + vhostExtra
	}
	return hostExtra
}

func (p *InterposedVVPath) hcSend(vm *hv.VM, args [4]uint64) (uint64, error) {
	staging, count, size := mem.GPA(args[0]), int(args[1]), int(args[2])
	v := vm.VCPU()
	hw, err := shm.NewHostWindow(p.ring, v.Clock())
	if err != nil {
		return 0, err
	}
	ring, err := shm.OpenRing(hw)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, size)
	sent := 0
	for sent < count {
		v.Charge(p.perPkt())
		if err := vm.GuestRead(staging+mem.GPA(sent*frameStride)+8, buf); err != nil {
			return 0, err
		}
		ok, err := ring.Push(buf)
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		sent++
	}
	if p.vhost {
		v.Charge(p.h.Cost().IRQInject)
	}
	return uint64(sent), nil
}

func (p *InterposedVVPath) hcRecv(vm *hv.VM, args [4]uint64) (uint64, error) {
	staging, max := mem.GPA(args[0]), int(args[1])
	v := vm.VCPU()
	hw, err := shm.NewHostWindow(p.ring, v.Clock())
	if err != nil {
		return 0, err
	}
	ring, err := shm.OpenRing(hw)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, SlotBytes)
	got := 0
	hdr := make([]byte, 8)
	for got < max {
		v.Charge(p.perPkt())
		n, ok, err := ring.Pop(buf)
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		off := staging + mem.GPA(got*frameStride)
		putU64(hdr, uint64(n))
		if err := vm.GuestWrite(off, hdr); err != nil {
			return 0, err
		}
		if err := vm.GuestWrite(off+8, buf[:n]); err != nil {
			return 0, err
		}
		got++
	}
	if p.vhost {
		v.Charge(p.h.Cost().IRQInject)
	}
	return uint64(got), nil
}

// Send implements VVPath.
func (p *InterposedVVPath) Send(count, size int) (int, error) {
	v := p.a.VCPU()
	buf := make([]byte, size)
	hdr := make([]byte, 8)
	for i := 0; i < count; i++ {
		v.ChargeInstr(driverInstr)
		fillPattern(buf, p.txSeq+i)
		off := stagingBase + mem.GPA(i*frameStride)
		putU64(hdr, uint64(size))
		if err := v.WriteGPA(off, hdr); err != nil {
			return 0, err
		}
		if err := v.WriteGPA(off+8, buf); err != nil {
			return 0, err
		}
	}
	if p.vhost {
		v.Charge(v.Cost().KickDoorbell)
	}
	ret, err := v.VMCall(HCVVSend, uint64(stagingBase), uint64(count), uint64(size))
	if err != nil {
		return 0, err
	}
	p.txSeq += int(ret)
	return int(ret), nil
}

// Recv implements VVPath.
func (p *InterposedVVPath) Recv(max int) (int, error) {
	v := p.b.VCPU()
	if p.vhost {
		v.Charge(v.Cost().KickDoorbell)
	}
	ret, err := v.VMCall(HCVVRecv, uint64(stagingBase), uint64(max))
	if err != nil {
		return 0, err
	}
	got := int(ret)
	hdr := make([]byte, 8)
	buf := make([]byte, SlotBytes)
	for i := 0; i < got; i++ {
		v.ChargeInstr(driverInstr + vvAppInstr)
		off := stagingBase + mem.GPA(i*frameStride)
		if err := v.ReadGPA(off, hdr); err != nil {
			return i, err
		}
		n := int(getU64(hdr))
		if n <= 0 || n > SlotBytes {
			return i, fmt.Errorf("vnet: %s vv: bad staged length %d", p.name, n)
		}
		if err := v.ReadGPA(off+8, buf[:n]); err != nil {
			return i, err
		}
		if !checkPattern(buf[:n], p.rxSeq) {
			return i, fmt.Errorf("vnet: %s vv: frame %d corrupted", p.name, p.rxSeq)
		}
		p.rxSeq++
	}
	return got, nil
}

// ---------------------------------------------------------------------------
// ELISA VM-to-VM: the ring is a manager object; both guests reach it
// through their own sub contexts, exit-less.

// ELISAVVPath forwards through the gate.
type ELISAVVPath struct {
	h     *hv.Hypervisor
	mgr   *core.Manager
	a, b  *core.Guest
	hA    *core.Handle
	hB    *core.Handle
	rings map[ringViewKey]*shm.Ring
	txSeq int
	rxSeq int
}

// ringViewKey identifies one view of the shared payload ring: the same
// object is reached through a different vCPU and at a different GPA by
// each guest's sub context and by the manager's host-side ring drain, so
// the window cache must key on both. The GPA alone is not enough — every
// VM's physical address space is independent, so the same numeric GPA can
// name different windows on different vCPUs.
type ringViewKey struct {
	v    *cpu.VCPU
	base mem.GPA
}

// NewELISAVVPath publishes the forwarding ring as a manager object and
// attaches both guests.
func NewELISAVVPath(h *hv.Hypervisor, mgr *core.Manager, a, b *core.Guest) (*ELISAVVPath, error) {
	region, _, err := newVVRing(h)
	if err != nil {
		return nil, err
	}
	p := &ELISAVVPath{h: h, mgr: mgr, a: a, b: b, rings: make(map[ringViewKey]*shm.Ring)}
	if _, err := mgr.CreateObjectFromRegion("vv-ring", region); err != nil {
		return nil, err
	}
	if err := mgr.RegisterFunc(FnVVSend, p.fnSend); err != nil {
		return nil, err
	}
	if err := mgr.RegisterFunc(FnVVRecv, p.fnRecv); err != nil {
		return nil, err
	}
	if p.hA, err = a.Attach("vv-ring"); err != nil {
		return nil, err
	}
	if p.hB, err = b.Attach("vv-ring"); err != nil {
		return nil, err
	}
	return p, nil
}

// Name implements VVPath.
func (p *ELISAVVPath) Name() string { return "elisa" }

// Sender implements VVPath.
func (p *ELISAVVPath) Sender() *hv.VM { return p.a.VM() }

// Receiver implements VVPath.
func (p *ELISAVVPath) Receiver() *hv.VM { return p.b.VM() }

func (p *ELISAVVPath) ringFor(ctx *core.CallContext) (*shm.Ring, error) {
	key := ringViewKey{ctx.VCPU, ctx.Object}
	if r, ok := p.rings[key]; ok {
		return r, nil
	}
	w, err := shm.NewGPAWindow(ctx.VCPU, ctx.Object, ctx.ObjectSize)
	if err != nil {
		return nil, err
	}
	r, err := shm.OpenRing(w)
	if err != nil {
		return nil, err
	}
	p.rings[key] = r
	return r, nil
}

func (p *ELISAVVPath) fnSend(ctx *core.CallContext) (uint64, error) {
	count, size := int(ctx.Args[0]), int(ctx.Args[1])
	ring, err := p.ringFor(ctx)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, size)
	sent := 0
	for sent < count {
		ctx.VCPU.Charge(mgrExtra)
		if err := ctx.ReadExchange(sent*frameStride+8, buf); err != nil {
			return 0, err
		}
		ok, err := ring.Push(buf)
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		sent++
	}
	return uint64(sent), nil
}

func (p *ELISAVVPath) fnRecv(ctx *core.CallContext) (uint64, error) {
	max := int(ctx.Args[0])
	ring, err := p.ringFor(ctx)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, SlotBytes)
	hdr := make([]byte, 8)
	got := 0
	for got < max {
		ctx.VCPU.Charge(mgrExtra)
		n, ok, err := ring.Pop(buf)
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		off := got * frameStride
		putU64(hdr, uint64(n))
		if err := ctx.WriteExchange(off, hdr); err != nil {
			return 0, err
		}
		if err := ctx.WriteExchange(off+8, buf[:n]); err != nil {
			return 0, err
		}
		got++
	}
	return uint64(got), nil
}

// Send implements VVPath.
func (p *ELISAVVPath) Send(count, size int) (int, error) {
	v := p.a.VM().VCPU()
	if cap := p.hA.ExchangeSize() / frameStride; count > cap {
		count = cap
	}
	buf := make([]byte, size)
	hdr := make([]byte, 8)
	for i := 0; i < count; i++ {
		v.ChargeInstr(driverInstr)
		fillPattern(buf, p.txSeq+i)
		putU64(hdr, uint64(size))
		off := i * frameStride
		if err := p.hA.ExchangeWrite(v, off, hdr); err != nil {
			return 0, err
		}
		if err := p.hA.ExchangeWrite(v, off+8, buf); err != nil {
			return 0, err
		}
	}
	ret, err := p.hA.Call(v, FnVVSend, uint64(count), uint64(size))
	if err != nil {
		return 0, err
	}
	p.txSeq += int(ret)
	return int(ret), nil
}

// Recv implements VVPath.
func (p *ELISAVVPath) Recv(max int) (int, error) {
	v := p.b.VM().VCPU()
	if cap := p.hB.ExchangeSize() / frameStride; max > cap {
		max = cap
	}
	ret, err := p.hB.Call(v, FnVVRecv, uint64(max))
	if err != nil {
		return 0, err
	}
	got := int(ret)
	hdr := make([]byte, 8)
	buf := make([]byte, SlotBytes)
	for i := 0; i < got; i++ {
		v.ChargeInstr(driverInstr + vvAppInstr)
		off := i * frameStride
		if err := p.hB.ExchangeRead(v, off, hdr); err != nil {
			return i, err
		}
		n := int(getU64(hdr))
		if n <= 0 || n > SlotBytes {
			return i, fmt.Errorf("vnet: elisa vv: bad staged length %d", n)
		}
		if err := p.hB.ExchangeRead(v, off+8, buf[:n]); err != nil {
			return i, err
		}
		if !checkPattern(buf[:n], p.rxSeq) {
			return i, fmt.Errorf("vnet: elisa vv: frame %d corrupted", p.rxSeq)
		}
		p.rxSeq++
	}
	return got, nil
}

// ---------------------------------------------------------------------------
// SR-IOV VM-to-VM: each guest drives its own VF ring; the adapter's
// embedded switch hairpins frames between them at wire speed.

// SRIOVVVPath hairpins through the NIC.
type SRIOVVVPath struct {
	h       *hv.Hypervisor
	a, b    *hv.VM
	ringA   *shm.Ring // A's VF TX ring (guest view)
	ringB   *shm.Ring // B's VF RX ring (guest view)
	devA    *shm.Ring // device views
	devB    *shm.Ring
	hairpin simtime.Time
	txSeq   int
	rxSeq   int
	cost    simtime.CostModel
}

// NewSRIOVVVPath allocates per-VF rings and the hairpin plumbing.
func NewSRIOVVVPath(h *hv.Hypervisor, a, b *hv.VM) (*SRIOVVVPath, error) {
	p := &SRIOVVVPath{h: h, a: a, b: b, cost: h.Cost()}
	build := func(vm *hv.VM) (guest, dev *shm.Ring, err error) {
		region, devRing, err := newVVRing(h)
		if err != nil {
			return nil, nil, err
		}
		gpa, err := region.MapIntoDefault(vm, ept.PermRW)
		if err != nil {
			return nil, nil, err
		}
		w, err := shm.NewGPAWindow(vm.VCPU(), gpa, region.Size())
		if err != nil {
			return nil, nil, err
		}
		g, err := shm.OpenRing(w)
		if err != nil {
			return nil, nil, err
		}
		return g, devRing, nil
	}
	var err error
	if p.ringA, p.devA, err = build(a); err != nil {
		return nil, err
	}
	if p.ringB, p.devB, err = build(b); err != nil {
		return nil, err
	}
	return p, nil
}

// Name implements VVPath.
func (p *SRIOVVVPath) Name() string { return "sriov" }

// Sender implements VVPath.
func (p *SRIOVVVPath) Sender() *hv.VM { return p.a }

// Receiver implements VVPath.
func (p *SRIOVVVPath) Receiver() *hv.VM { return p.b }

// Send implements VVPath: A pushes into its VF ring; the embedded switch
// moves frames to B's VF ring on the hairpin timeline (device work, no
// CPU charge).
func (p *SRIOVVVPath) Send(count, size int) (int, error) {
	v := p.a.VCPU()
	buf := make([]byte, size)
	sent := 0
	for sent < count {
		v.ChargeInstr(driverInstr)
		v.Charge(vfExtra + v.Cost().CopyCost(size))
		fillPattern(buf, p.txSeq)
		ok, err := p.ringA.Push(buf)
		if err != nil {
			return sent, err
		}
		if !ok {
			break
		}
		p.txSeq++
		sent++
	}
	// Hairpin: the adapter forwards each frame after serialising it
	// through its internal switch.
	if p.hairpin < v.Clock().Now() {
		p.hairpin = v.Clock().Now()
	}
	hbuf := make([]byte, SlotBytes)
	for {
		n, ok, err := p.devA.Pop(hbuf)
		if err != nil {
			return sent, err
		}
		if !ok {
			break
		}
		p.hairpin = p.hairpin.Add(p.cost.NICWireTime(n) + p.cost.SRIOVSwitchPerPacket)
		if _, err := p.devB.Push(hbuf[:n]); err != nil {
			return sent, err
		}
	}
	return sent, nil
}

// Recv implements VVPath: B polls its VF ring; frames are not visible
// before the hairpin delivered them.
func (p *SRIOVVVPath) Recv(max int) (int, error) {
	v := p.b.VCPU()
	v.Clock().AdvanceTo(p.hairpin)
	buf := make([]byte, SlotBytes)
	got := 0
	for got < max {
		v.ChargeInstr(driverInstr + vvAppInstr)
		v.Charge(vfExtra)
		n, ok, err := p.ringB.Pop(buf)
		if err != nil {
			return got, err
		}
		if !ok {
			break
		}
		if !checkPattern(buf[:n], p.rxSeq) {
			return got, fmt.Errorf("vnet: sriov vv: frame %d corrupted", p.rxSeq)
		}
		p.rxSeq++
		got++
	}
	return got, nil
}
