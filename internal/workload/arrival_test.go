package workload

import (
	"testing"

	"github.com/elisa-go/elisa/internal/simtime"
)

// empiricalOPS drives an arrival process for n gaps and returns the
// realised rate in ops per simulated second.
func empiricalOPS(a Arrival, n int) float64 {
	var total simtime.Duration
	for i := 0; i < n; i++ {
		total += a.NextInterval()
	}
	return float64(n) / total.Seconds()
}

// TestWorkloadMMPPMeanConvergence: the empirical rate of a long MMPP run
// converges to the dwell-weighted mean of the two state rates.
func TestWorkloadMMPPMeanConvergence(t *testing.T) {
	m, err := NewMMPP(21, 100_000, 1_600_000, 120*simtime.Microsecond, 30*simtime.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	want := m.MeanOPS()
	if wantSpec := (100_000.0*120 + 1_600_000.0*30) / 150; want < wantSpec*0.999 || want > wantSpec*1.001 {
		t.Fatalf("MeanOPS %.0f, spec formula %.0f", want, wantSpec)
	}
	got := empiricalOPS(m, 200_000)
	if got < 0.9*want || got > 1.1*want {
		t.Fatalf("empirical rate %.0f ops/s, want %.0f +/-10%%", got, want)
	}
}

// TestWorkloadMMPPBurstiness: an MMPP with a hot burst state must be
// burstier than Poisson — the squared coefficient of variation of its
// gaps stays well above the exponential's 1.
func TestWorkloadMMPPBurstiness(t *testing.T) {
	m, err := NewMMPP(4, 50_000, 2_000_000, 200*simtime.Microsecond, 50*simtime.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100_000
	gaps := make([]float64, n)
	var mean float64
	for i := range gaps {
		gaps[i] = float64(m.NextInterval())
		mean += gaps[i]
	}
	mean /= n
	var varsum float64
	for _, g := range gaps {
		varsum += (g - mean) * (g - mean)
	}
	cv2 := varsum / n / (mean * mean)
	if cv2 < 1.5 {
		t.Fatalf("squared CV %.2f — not meaningfully burstier than Poisson (1.0)", cv2)
	}
}

// TestWorkloadDiurnalMeanConvergence: over whole periods the sinusoid
// integrates away and the realised rate converges to the base rate.
func TestWorkloadDiurnalMeanConvergence(t *testing.T) {
	d, err := NewDiurnal(31, 500_000, 0.8, 100*simtime.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	got := empiricalOPS(d, 200_000) // ~400ms: 4000 periods
	if got < 0.9*500_000 || got > 1.1*500_000 {
		t.Fatalf("empirical rate %.0f ops/s, want 500000 +/-10%%", got)
	}
}

// TestWorkloadDiurnalModulation: the realised rate inside peak
// half-periods must exceed the rate inside trough half-periods — the
// thinning really modulates, not just averages.
func TestWorkloadDiurnalModulation(t *testing.T) {
	period := 100 * simtime.Microsecond
	d, err := NewDiurnal(8, 500_000, 0.9, period)
	if err != nil {
		t.Fatal(err)
	}
	var now simtime.Time
	peak, trough := 0, 0
	for i := 0; i < 100_000; i++ {
		now = now.Add(d.NextInterval())
		if phase := int64(now) % int64(period); phase < int64(period)/2 {
			peak++ // sin positive: first half-period
		} else {
			trough++
		}
	}
	if peak < 2*trough {
		t.Fatalf("peak/trough split %d/%d — modulation too weak for amp 0.9", peak, trough)
	}
}

// TestWorkloadArrivalDeterminism: for every process family, same seed =>
// identical gap stream, different seed => divergence.
func TestWorkloadArrivalDeterminism(t *testing.T) {
	build := map[string]func(seed int64) (Arrival, error){
		"poisson": func(seed int64) (Arrival, error) { return NewPoisson(seed, 250_000) },
		"mmpp": func(seed int64) (Arrival, error) {
			return NewMMPP(seed, 100_000, 800_000, 80*simtime.Microsecond, 20*simtime.Microsecond)
		},
		"diurnal": func(seed int64) (Arrival, error) {
			return NewDiurnal(seed, 250_000, 0.6, 50*simtime.Microsecond)
		},
	}
	for name, mk := range build {
		a, err := mk(11)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, _ := mk(11)
		c, _ := mk(12)
		diverged := false
		for i := 0; i < 10_000; i++ {
			av := a.NextInterval()
			if bv := b.NextInterval(); av != bv {
				t.Fatalf("%s: same-seed gap %d differs: %v vs %v", name, i, av, bv)
			}
			if av != c.NextInterval() {
				diverged = true
			}
		}
		if !diverged {
			t.Errorf("%s: different seeds produced identical streams", name)
		}
	}
}

// TestWorkloadArrivalBoundaries: zero and negative shape parameters must
// refuse at construction, never at first use.
func TestWorkloadArrivalBoundaries(t *testing.T) {
	us := simtime.Microsecond
	cases := []struct {
		name string
		mk   func() error
	}{
		{"poisson zero rate", func() error { _, err := NewPoisson(1, 0); return err }},
		{"poisson negative rate", func() error { _, err := NewPoisson(1, -5); return err }},
		{"mmpp zero calm rate", func() error { _, err := NewMMPP(1, 0, 100, 10*us, 10*us); return err }},
		{"mmpp zero burst rate", func() error { _, err := NewMMPP(1, 100, 0, 10*us, 10*us); return err }},
		{"mmpp zero calm dwell", func() error { _, err := NewMMPP(1, 100, 200, 0, 10*us); return err }},
		{"mmpp negative burst dwell", func() error { _, err := NewMMPP(1, 100, 200, 10*us, -us); return err }},
		{"diurnal zero rate", func() error { _, err := NewDiurnal(1, 0, 0.5, us); return err }},
		{"diurnal amp 1", func() error { _, err := NewDiurnal(1, 100, 1, us); return err }},
		{"diurnal negative amp", func() error { _, err := NewDiurnal(1, 100, -0.1, us); return err }},
		{"diurnal zero period", func() error { _, err := NewDiurnal(1, 100, 0.5, 0); return err }},
	}
	for _, tc := range cases {
		if tc.mk() == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestWorkloadSingleEventHorizon: a horizon that admits at most one
// arrival generates at most one event, and a horizon at or below the
// minimum gap generates none from a slow tenant.
func TestWorkloadSingleEventHorizon(t *testing.T) {
	specs := []Spec{{
		Name: "slow", RateOPS: 1000, Objects: []string{"o"}, Fn: 1,
	}}
	// 1000 ops/s => mean gap 1ms. A 1ns horizon precedes any arrival.
	tr, err := Generate(specs, 5, simtime.Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 0 {
		t.Fatalf("1ns horizon produced %d events", len(tr.Events))
	}
	// A one-gap horizon: find the first gap, generate just past it.
	p, _ := NewPoisson(5+1, 1000) // Generate's lane seed for spec 0
	first := p.NextInterval()
	second := p.NextInterval()
	tr, err = Generate(specs, 5, first+min(second, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 1 {
		t.Fatalf("single-event horizon produced %d events", len(tr.Events))
	}
	if tr.Events[0].At != simtime.Time(0).Add(first) {
		t.Fatalf("event at %d, want %d", tr.Events[0].At, first)
	}
}
