package workload

import (
	"fmt"

	"github.com/elisa-go/elisa/internal/simtime"
)

// Generate renders a scenario — tenant specs, a seed, a horizon — into a
// concrete Trace: every tenant's arrival process and key chooser run
// forward in simulated time and the streams merge in (time, spec order)
// order, so the same inputs always produce the identical trace, and the
// trace file is the only artefact a replay needs.
//
// Seeding mirrors the fleet scheduler's convention (seed + index*7919 +
// 1 per tenant, a distinct lane per generator), so a spec's stream is
// invariant to which other tenants share the scenario.
func Generate(specs []Spec, seed int64, horizon simtime.Duration) (*Trace, error) {
	if horizon <= 0 {
		return nil, fmt.Errorf("workload: generate horizon %d must be positive", horizon)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("workload: generate needs at least one spec")
	}
	type lane struct {
		spec    *Spec
		arrival Arrival
		keys    KeyChooser
		next    simtime.Time // next arrival instant (past horizon = done)
		emitted int
		rr      int
	}
	lanes := make([]*lane, 0, len(specs))
	for i := range specs {
		sp := &specs[i]
		if err := sp.validate(); err != nil {
			return nil, err
		}
		arr, err := sp.NewArrival(seed + int64(i)*7919 + 1)
		if err != nil {
			return nil, err
		}
		keys, err := sp.NewKeys(seed + int64(i)*7919 + 2)
		if err != nil {
			return nil, err
		}
		ln := &lane{spec: sp, arrival: arr, keys: keys}
		ln.next = simtime.Time(0).Add(arr.NextInterval())
		lanes = append(lanes, ln)
	}
	end := simtime.Time(0).Add(horizon)
	tr := &Trace{}
	for {
		var pick *lane
		for _, ln := range lanes {
			if ln.next >= end {
				continue
			}
			if ln.spec.Ops > 0 && ln.emitted >= ln.spec.Ops {
				continue
			}
			if pick == nil || ln.next < pick.next {
				pick = ln // ties resolve to the earlier spec: lanes scan in spec order
			}
		}
		if pick == nil {
			return tr, nil
		}
		obj := pick.rr
		if pick.keys != nil {
			obj = pick.keys.Next()
		}
		pick.rr = (pick.rr + 1) % len(pick.spec.Objects)
		tr.Events = append(tr.Events, Event{
			At:     pick.next,
			Tenant: pick.spec.Name,
			Object: pick.spec.Objects[obj%len(pick.spec.Objects)],
			Fn:     pick.spec.Fn,
			Class:  pick.spec.Class,
			Size:   pick.spec.SizeBytes,
		})
		pick.emitted++
		pick.next = pick.next.Add(pick.arrival.NextInterval())
	}
}
