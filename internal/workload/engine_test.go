package workload

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/elisa-go/elisa/internal/simtime"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestWorkloadGenerateDeterminism: the generator is a pure function of
// (specs, seed, horizon) — same inputs render byte-identical traces,
// different seeds diverge.
func TestWorkloadGenerateDeterminism(t *testing.T) {
	gen := func(seed int64) []byte {
		specs2, err := RegressionSpecs() // fresh copy: Generate mutates defaults in place
		if err != nil {
			t.Fatal(err)
		}
		tr, err := Generate(specs2, seed, 200*simtime.Microsecond)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, tr); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b, c := gen(7), gen(7), gen(8)
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed traces differ")
	}
	if bytes.Equal(a, c) {
		t.Fatal("different-seed traces identical")
	}
}

// TestWorkloadGenerateShape: generated events are time-ordered, within
// the horizon, and attributed to spec'd tenants/objects/classes.
func TestWorkloadGenerateShape(t *testing.T) {
	specs, err := RegressionSpecs()
	if err != nil {
		t.Fatal(err)
	}
	horizon := 300 * simtime.Microsecond
	tr, err := Generate(specs, 3, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) == 0 {
		t.Fatal("no events generated")
	}
	byName := make(map[string]*Spec)
	for i := range specs {
		byName[specs[i].Name] = &specs[i]
	}
	var last simtime.Time
	perTenant := map[string]int{}
	for i, ev := range tr.Events {
		if ev.At < last {
			t.Fatalf("event %d out of order: %d after %d", i, ev.At, last)
		}
		last = ev.At
		if simtime.Duration(ev.At) >= horizon {
			t.Fatalf("event %d at %d past horizon %d", i, ev.At, horizon)
		}
		sp := byName[ev.Tenant]
		if sp == nil {
			t.Fatalf("event %d names unknown tenant %q", i, ev.Tenant)
		}
		if ev.Class != sp.Class || ev.Fn != sp.Fn || ev.Size != sp.SizeBytes {
			t.Fatalf("event %d does not match spec %q: %+v", i, sp.Name, ev)
		}
		found := false
		for _, o := range sp.Objects {
			if o == ev.Object {
				found = true
			}
		}
		if !found {
			t.Fatalf("event %d object %q outside %q's set", i, ev.Object, sp.Name)
		}
		perTenant[ev.Tenant]++
	}
	for name := range byName {
		if perTenant[name] == 0 {
			t.Errorf("tenant %q generated no events over %v", name, horizon)
		}
	}
}

// TestWorkloadRegressionTraceGolden pins the committed regression trace:
// the embedded spec rendered under (RegressionSeed, RegressionHorizon)
// must reproduce testdata/regression_trace.csv byte for byte. Regenerate
// with `go test ./internal/workload -run RegressionTrace -update` after
// an intentional generator or spec change — and expect to re-cut every
// downstream golden (fleet/cluster replay reports, elisa-replay,
// EXPERIMENTS.md) when you do.
func TestWorkloadRegressionTraceGolden(t *testing.T) {
	specs, err := RegressionSpecs()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Generate(specs, RegressionSeed, RegressionHorizon)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "regression_trace.csv")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("regression trace drifted from committed golden (%d vs %d bytes); run with -update if intentional", buf.Len(), len(want))
	}
	// The embedded copy must parse back to the generated events exactly.
	parsed, err := RegressionTrace()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed.Events, tr.Events) {
		t.Fatal("embedded trace does not parse back to the generated events")
	}
	if len(parsed.Events) < 200 {
		t.Fatalf("regression trace suspiciously small: %d events", len(parsed.Events))
	}
}
