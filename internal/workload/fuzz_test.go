package workload

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzTraceParse throws arbitrary bytes at the CSV trace parser — the
// boundary where committed scenario files and operator-supplied traces
// enter the simulator. The invariants: never panic, bound memory (the
// parser rejects oversized lines and fields rather than buffering them),
// and accepted traces survive a write/parse round trip unchanged. The
// seed corpus under testdata/fuzz/FuzzTraceParse keeps the interesting
// shapes: a valid trace, malformed rows, huge fields, and out-of-order
// timestamps (which must error, never reorder).
func FuzzTraceParse(f *testing.F) {
	f.Add([]byte(TraceHeader + "\n0,web,wk-00,0xf1ee0010,2,256\n113,batch,wk-03,7,0,1024\n"))
	f.Add([]byte(TraceHeader + "\n10,a,b,0,0,1\n5,a,b,0,0,1\n"))
	f.Add([]byte(TraceHeader + "\n1,a,b,0,0," + strings.Repeat("9", 64) + "\n"))
	f.Add([]byte("arrival_ns,tenant\n1,a\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ParseTrace(bytes.NewReader(data))
		if err != nil {
			return // rejected is fine; panicking is not
		}
		var prev int64 = -1
		for i, ev := range tr.Events {
			if int64(ev.At) < prev {
				t.Fatalf("event %d accepted out of order: %d after %d", i, ev.At, prev)
			}
			prev = int64(ev.At)
			if ev.Tenant == "" || ev.Object == "" || ev.Class < 0 || ev.Size < 0 {
				t.Fatalf("event %d accepted with invalid fields: %+v", i, ev)
			}
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, tr); err != nil {
			t.Fatalf("rewrite of accepted trace failed: %v", err)
		}
		again, err := ParseTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reparse of rewritten trace failed: %v", err)
		}
		if !reflect.DeepEqual(tr.Events, again.Events) {
			t.Fatal("write/parse round trip changed the events")
		}
	})
}
