package workload

import (
	"bytes"
	_ "embed"

	"github.com/elisa-go/elisa/internal/simtime"
)

// The committed rebalance scenario: four equal-rate Poisson tenants,
// each with one exclusive object, and the trace they render to under
// RebalanceSeed and RebalanceHorizon. ext_rebalance pins every object on
// shard 0 of a 4-shard cluster — balanced demand over maximally skewed
// placement — and replays this trace with and without the
// auto-rebalancer armed; the cluster rebalancer tests replay it at 1, 4,
// and 16 shards. Embedded like the regression scenario so every consumer
// replays the same bytes.
var (
	//go:embed testdata/rebalance_spec.conf
	rebalanceSpecConf []byte
	//go:embed testdata/rebalance_trace.csv
	rebalanceTraceCSV []byte
)

// RebalanceSeed and RebalanceHorizon are the Generate inputs that render
// the committed rebalance spec into the committed trace.
const (
	RebalanceSeed    int64 = 7
	RebalanceHorizon       = 400 * simtime.Microsecond
)

// RebalanceFn is the manager function every committed rebalance-trace op
// calls (the same fn ID as the regression trace).
const RebalanceFn uint64 = 0xF1EE0010

// RebalanceSpecs parses the committed rebalance tenant specs.
func RebalanceSpecs() ([]Spec, error) {
	return ParseSpecs(bytes.NewReader(rebalanceSpecConf))
}

// RebalanceTrace parses the committed rebalance trace.
func RebalanceTrace() (*Trace, error) {
	return ParseTrace(bytes.NewReader(rebalanceTraceCSV))
}

// RebalanceTraceBytes returns the committed rebalance trace file
// verbatim (the golden the generator must reproduce).
func RebalanceTraceBytes() []byte {
	return append([]byte(nil), rebalanceTraceCSV...)
}
