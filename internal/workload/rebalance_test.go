package workload

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestWorkloadRebalanceTraceGolden pins the committed rebalance trace:
// the embedded spec rendered under (RebalanceSeed, RebalanceHorizon)
// must reproduce testdata/rebalance_trace.csv byte for byte. Regenerate
// with `go test ./internal/workload -run RebalanceTrace -update` after
// an intentional generator or spec change — and expect to re-cut the
// cluster rebalancer goldens (ext_rebalance, convergence tables) when
// you do.
func TestWorkloadRebalanceTraceGolden(t *testing.T) {
	specs, err := RebalanceSpecs()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Generate(specs, RebalanceSeed, RebalanceHorizon)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "rebalance_trace.csv")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("rebalance trace drifted from committed golden (%d vs %d bytes); run with -update if intentional", buf.Len(), len(want))
	}
	parsed, err := RebalanceTrace()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed.Events, tr.Events) {
		t.Fatal("embedded trace does not parse back to the generated events")
	}
	if len(parsed.Events) < 200 {
		t.Fatalf("rebalance trace suspiciously small: %d events", len(parsed.Events))
	}
	// The scenario's whole point is balanced demand: every tenant must
	// contribute within 20% of the mean.
	perTenant := map[string]int{}
	for _, ev := range parsed.Events {
		perTenant[ev.Tenant]++
	}
	if len(perTenant) != 4 {
		t.Fatalf("want 4 tenants, got %d", len(perTenant))
	}
	mean := float64(len(parsed.Events)) / 4
	for name, n := range perTenant {
		if f := float64(n); f < 0.8*mean || f > 1.2*mean {
			t.Errorf("tenant %q contributed %d events, outside 20%% of mean %.0f", name, n, mean)
		}
	}
}
