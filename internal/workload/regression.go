package workload

import (
	"bytes"
	_ "embed"

	"github.com/elisa-go/elisa/internal/simtime"
)

// The committed regression scenario: a three-tenant spec (one tenant per
// arrival-process family) and the trace it renders to under
// RegressionSeed and RegressionHorizon. Both files are embedded so every
// consumer — the workload goldens, the fleet/cluster replay determinism
// tests, ext_workload, and the elisa-replay goldens — replays the same
// bytes without path plumbing.
var (
	//go:embed testdata/regression_spec.conf
	regressionSpecConf []byte
	//go:embed testdata/regression_trace.csv
	regressionTraceCSV []byte
)

// RegressionSeed and RegressionHorizon are the Generate inputs that
// render the committed spec into the committed trace.
const (
	RegressionSeed    int64 = 42
	RegressionHorizon       = 250 * simtime.Microsecond
)

// RegressionFn is the manager function every committed-trace op calls.
const RegressionFn uint64 = 0xF1EE0010

// RegressionSpecs parses the committed tenant specs.
func RegressionSpecs() ([]Spec, error) {
	return ParseSpecs(bytes.NewReader(regressionSpecConf))
}

// RegressionTrace parses the committed trace.
func RegressionTrace() (*Trace, error) {
	return ParseTrace(bytes.NewReader(regressionTraceCSV))
}

// RegressionTraceBytes returns the committed trace file verbatim (the
// golden the generator must reproduce).
func RegressionTraceBytes() []byte {
	return append([]byte(nil), regressionTraceCSV...)
}
