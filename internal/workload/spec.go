package workload

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/elisa-go/elisa/internal/simtime"
)

// Spec binds one tenant to its workload: an arrival process, a key
// distribution over its objects, a priority class, and admission limits.
// A []Spec plus a seed and a horizon is a complete, reproducible
// heavy-traffic scenario (see Generate).
type Spec struct {
	// Name is the tenant (guest VM) name.
	Name string
	// Arrival selects the arrival process: "poisson" (default), "mmpp",
	// or "diurnal".
	Arrival string
	// RateOPS is the mean arrival rate in ops per simulated second. For
	// MMPP it is the calm-state rate; the dwell-weighted mean also
	// depends on BurstRateOPS and the dwells.
	RateOPS float64
	// BurstRateOPS, CalmDwell, and BurstDwell shape the MMPP burst state
	// (defaults: 8x RateOPS, 100µs, 25µs).
	BurstRateOPS          float64
	CalmDwell, BurstDwell simtime.Duration
	// Amplitude and Period shape the diurnal sinusoid (defaults 0.5 and
	// 1ms of simulated time).
	Amplitude float64
	Period    simtime.Duration
	// Keys selects how ops pick objects: "roundrobin" (default),
	// "uniform", or "zipf" (Skew, default 0.99, index 0 hottest).
	Keys string
	Skew float64
	// Objects are the shared objects the tenant calls.
	Objects []string
	// Fn is the manager function every op calls.
	Fn uint64
	// Class is the tenant's load-shedding priority class (0 = lowest).
	Class int
	// Weight is the tenant's scheduler share (default 1).
	Weight int
	// SizeBytes is the payload size recorded per op (default 64).
	SizeBytes int
	// AdmitRateOPS and AdmitBurst configure the tenant's admission token
	// bucket on replay (0 = no bucket).
	AdmitRateOPS float64
	AdmitBurst   int
	// Ops caps the tenant's generated arrivals (0 = until the horizon).
	Ops int
}

// NewArrival builds the spec's arrival process with the given seed.
func (sp *Spec) NewArrival(seed int64) (Arrival, error) {
	switch sp.Arrival {
	case "", "poisson":
		return NewPoisson(seed, sp.RateOPS)
	case "mmpp":
		burst := sp.BurstRateOPS
		if burst == 0 {
			burst = 8 * sp.RateOPS
		}
		calmDwell, burstDwell := sp.CalmDwell, sp.BurstDwell
		if calmDwell == 0 {
			calmDwell = 100 * simtime.Microsecond
		}
		if burstDwell == 0 {
			burstDwell = 25 * simtime.Microsecond
		}
		return NewMMPP(seed, sp.RateOPS, burst, calmDwell, burstDwell)
	case "diurnal":
		amp := sp.Amplitude
		if amp == 0 {
			amp = 0.5
		}
		period := sp.Period
		if period == 0 {
			period = simtime.Millisecond
		}
		return NewDiurnal(seed, sp.RateOPS, amp, period)
	default:
		return nil, fmt.Errorf("workload: spec %q: unknown arrival process %q", sp.Name, sp.Arrival)
	}
}

// NewKeys builds the spec's object chooser with the given seed. A nil
// chooser means round-robin (the caller cycles the objects itself).
func (sp *Spec) NewKeys(seed int64) (KeyChooser, error) {
	switch sp.Keys {
	case "", "roundrobin":
		return nil, nil
	case "uniform":
		return NewUniform(seed, len(sp.Objects))
	case "zipf":
		skew := sp.Skew
		if skew == 0 {
			skew = 0.99
		}
		return NewZipf(seed, len(sp.Objects), skew)
	default:
		return nil, fmt.Errorf("workload: spec %q: unknown key distribution %q", sp.Name, sp.Keys)
	}
}

// validate applies defaults and checks the spec is runnable.
func (sp *Spec) validate() error {
	if sp.Name == "" {
		return fmt.Errorf("workload: spec needs a tenant name")
	}
	if sp.RateOPS <= 0 {
		return fmt.Errorf("workload: spec %q: rate %v must be positive", sp.Name, sp.RateOPS)
	}
	if len(sp.Objects) == 0 {
		return fmt.Errorf("workload: spec %q has no objects", sp.Name)
	}
	if sp.Class < 0 || sp.Class >= maxTraceClass {
		return fmt.Errorf("workload: spec %q: class %d outside [0,%d)", sp.Name, sp.Class, maxTraceClass)
	}
	if sp.Weight <= 0 {
		sp.Weight = 1
	}
	if sp.SizeBytes == 0 {
		sp.SizeBytes = 64
	}
	if sp.SizeBytes < 0 || sp.SizeBytes > maxTraceSize {
		return fmt.Errorf("workload: spec %q: size %d outside [0,%d]", sp.Name, sp.SizeBytes, maxTraceSize)
	}
	return nil
}

// ParseSpecs reads the flat tenant-spec format: one `tenant <name>:`
// header per tenant followed by `key: value` lines, `#` comments and
// blank lines ignored. The keys mirror the Spec fields:
//
//	tenant frontend:
//	  arrival: diurnal        # poisson | mmpp | diurnal
//	  rate: 400000            # ops per simulated second
//	  amplitude: 0.8          # diurnal depth
//	  period_us: 400          # diurnal period
//	  burst_rate: 3200000     # mmpp burst-state rate
//	  calm_dwell_us: 100      # mmpp dwells
//	  burst_dwell_us: 25
//	  keys: zipf              # roundrobin | uniform | zipf
//	  skew: 0.99
//	  objects: kv-00,kv-01
//	  fn: 0xF1EE0010
//	  class: 2
//	  weight: 4
//	  size: 256
//	  admit_rate: 500000      # admission token bucket (0 = off)
//	  admit_burst: 32
//	  ops: 0                  # arrival cap (0 = until horizon)
func ParseSpecs(r io.Reader) ([]Spec, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024), maxTraceLine)
	var specs []Spec
	var cur *Spec
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(strings.TrimRight(sc.Text(), "\r"))
		if i := strings.Index(text, "#"); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		if text == "" {
			continue
		}
		if name, ok := strings.CutPrefix(text, "tenant "); ok {
			name = strings.TrimSpace(strings.TrimSuffix(name, ":"))
			if name == "" || len(name) > maxTraceField {
				return nil, fmt.Errorf("workload: spec line %d: bad tenant name", line)
			}
			specs = append(specs, Spec{Name: name})
			cur = &specs[len(specs)-1]
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("workload: spec line %d: %q outside a tenant section", line, text)
		}
		key, val, ok := strings.Cut(text, ":")
		if !ok {
			return nil, fmt.Errorf("workload: spec line %d: want `key: value`, got %q", line, text)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if err := cur.setField(key, val); err != nil {
			return nil, fmt.Errorf("workload: spec line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: spec line %d: %w", line+1, err)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("workload: spec file defines no tenants")
	}
	seen := make(map[string]bool, len(specs))
	for i := range specs {
		if seen[specs[i].Name] {
			return nil, fmt.Errorf("workload: duplicate tenant %q", specs[i].Name)
		}
		seen[specs[i].Name] = true
		if err := specs[i].validate(); err != nil {
			return nil, err
		}
	}
	return specs, nil
}

// setField assigns one parsed `key: value` pair.
func (sp *Spec) setField(key, val string) error {
	switch key {
	case "arrival":
		sp.Arrival = val
	case "keys":
		sp.Keys = val
	case "objects":
		for _, o := range strings.Split(val, ",") {
			o = strings.TrimSpace(o)
			if o == "" || len(o) > maxTraceField {
				return fmt.Errorf("bad object name %q", o)
			}
			sp.Objects = append(sp.Objects, o)
		}
	case "rate", "burst_rate", "amplitude", "skew", "admit_rate":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f < 0 {
			return fmt.Errorf("bad %s %q", key, val)
		}
		switch key {
		case "rate":
			sp.RateOPS = f
		case "burst_rate":
			sp.BurstRateOPS = f
		case "amplitude":
			sp.Amplitude = f
		case "skew":
			sp.Skew = f
		case "admit_rate":
			sp.AdmitRateOPS = f
		}
	case "period_us", "calm_dwell_us", "burst_dwell_us":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil || n < 0 {
			return fmt.Errorf("bad %s %q", key, val)
		}
		d := simtime.Duration(n) * simtime.Microsecond
		switch key {
		case "period_us":
			sp.Period = d
		case "calm_dwell_us":
			sp.CalmDwell = d
		case "burst_dwell_us":
			sp.BurstDwell = d
		}
	case "fn":
		n, err := strconv.ParseUint(val, 0, 64)
		if err != nil {
			return fmt.Errorf("bad fn %q", val)
		}
		sp.Fn = n
	case "class", "weight", "size", "admit_burst", "ops":
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return fmt.Errorf("bad %s %q", key, val)
		}
		switch key {
		case "class":
			sp.Class = n
		case "weight":
			sp.Weight = n
		case "size":
			sp.SizeBytes = n
		case "admit_burst":
			sp.AdmitBurst = n
		case "ops":
			sp.Ops = n
		}
	default:
		return fmt.Errorf("unknown key %q", key)
	}
	return nil
}

// ReadSpecFile parses the tenant specs at path.
func ReadSpecFile(path string) ([]Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseSpecs(f)
}
