package workload

import (
	"strings"
	"testing"

	"github.com/elisa-go/elisa/internal/simtime"
)

// TestWorkloadSpecParseRegression parses the committed regression spec
// and pins the fields the trace generator depends on.
func TestWorkloadSpecParseRegression(t *testing.T) {
	specs, err := RegressionSpecs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("%d tenants, want 3", len(specs))
	}
	web, batch, svc := specs[0], specs[1], specs[2]
	if web.Name != "web" || web.Arrival != "diurnal" || web.Keys != "zipf" ||
		web.Skew != 0.99 || web.Class != 2 || web.Weight != 4 ||
		web.Period != 250*simtime.Microsecond || web.AdmitRateOPS != 4_800_000 {
		t.Fatalf("web spec: %+v", web)
	}
	if batch.Arrival != "mmpp" || batch.BurstRateOPS != 25_600_000 ||
		batch.CalmDwell != 120*simtime.Microsecond || batch.Class != 0 {
		t.Fatalf("batch spec: %+v", batch)
	}
	if svc.Arrival != "poisson" || len(svc.Objects) != 4 || svc.Class != 1 {
		t.Fatalf("svc spec: %+v", svc)
	}
	for _, sp := range specs {
		if sp.Fn != RegressionFn {
			t.Fatalf("%s fn %#x, want %#x", sp.Name, sp.Fn, RegressionFn)
		}
		if _, err := sp.NewArrival(1); err != nil {
			t.Fatalf("%s arrival: %v", sp.Name, err)
		}
		if _, err := sp.NewKeys(2); err != nil {
			t.Fatalf("%s keys: %v", sp.Name, err)
		}
	}
}

// TestWorkloadSpecParseErrors: the malformed spec shapes all error.
func TestWorkloadSpecParseErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"pair outside section", "rate: 100\n"},
		{"bad pair", "tenant a:\nrate 100\n"},
		{"unknown key", "tenant a:\nrainfall: 3\nrate: 1\nobjects: o\n"},
		{"no name", "tenant :\n"},
		{"duplicate tenant", "tenant a:\nrate: 1\nobjects: o\ntenant a:\nrate: 1\nobjects: o\n"},
		{"zero rate", "tenant a:\nobjects: o\n"},
		{"no objects", "tenant a:\nrate: 5\n"},
		{"bad rate", "tenant a:\nrate: fast\nobjects: o\n"},
		{"negative weight", "tenant a:\nrate: 5\nobjects: o\nweight: -1\n"},
		{"bad arrival", "tenant a:\nrate: 5\nobjects: o\narrival: lunar\n"},
		{"bad keys", "tenant a:\nrate: 5\nobjects: o\nkeys: modal\n"},
		{"class overflow", "tenant a:\nrate: 5\nobjects: o\nclass: 999\n"},
		{"empty object", "tenant a:\nrate: 5\nobjects: o,,p\n"},
	}
	for _, tc := range cases {
		specs, err := ParseSpecs(strings.NewReader(tc.in))
		if err == nil {
			// Unknown arrival/keys surface at build time, not parse time.
			bad := false
			for i := range specs {
				if _, aerr := specs[i].NewArrival(1); aerr != nil {
					bad = true
				}
				if _, kerr := specs[i].NewKeys(1); kerr != nil {
					bad = true
				}
			}
			if !bad {
				t.Errorf("%s: accepted", tc.name)
			}
		}
	}
}

// TestWorkloadSpecDefaults: omitted fields get the documented defaults.
func TestWorkloadSpecDefaults(t *testing.T) {
	specs, err := ParseSpecs(strings.NewReader("tenant a:\n  rate: 100\n  objects: x,y\n"))
	if err != nil {
		t.Fatal(err)
	}
	sp := specs[0]
	if sp.Weight != 1 || sp.SizeBytes != 64 || sp.Class != 0 {
		t.Fatalf("defaults: %+v", sp)
	}
	if _, err := sp.NewArrival(1); err != nil {
		t.Fatalf("default arrival: %v", err)
	}
	if keys, err := sp.NewKeys(1); err != nil || keys != nil {
		t.Fatalf("default keys should be round-robin (nil), got %v, %v", keys, err)
	}
}
