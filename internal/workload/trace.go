package workload

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/elisa-go/elisa/internal/simtime"
)

// TraceHeader is the first line of every trace file; parsing rejects any
// other header so a schema change cannot be misread as data.
const TraceHeader = "arrival_ns,tenant,object,fn,class,size"

// Trace-format guardrails: a parser fed hostile input must error, never
// panic or balloon. Fields are bounded, lines are bounded, and timestamps
// must be non-decreasing (a trace is an event log, not a bag).
const (
	maxTraceLine  = 4096    // bytes per line
	maxTraceField = 256     // bytes per tenant/object name
	maxTraceClass = 64      // priority classes that could ever exist
	maxTraceSize  = 1 << 30 // one GiB payload bound per op
)

// Event is one trace row: an operation arriving at a tenant at an
// absolute simulated instant, naming the shared object and manager
// function it calls, the tenant's priority class, and the payload size.
type Event struct {
	At     simtime.Time
	Tenant string
	Object string
	Fn     uint64
	Class  int
	Size   int
}

// Trace is an ordered arrival log — the deterministic-workload exchange
// format: the generator writes one, the fleet and cluster replay it, and
// committing one next to its golden report turns a heavy-traffic scenario
// into a regression test.
type Trace struct {
	Events []Event
}

// Duration returns the instant just past the last event (0 for an empty
// trace) — the minimum window a replay needs to deliver every arrival.
func (tr *Trace) Duration() simtime.Duration {
	if len(tr.Events) == 0 {
		return 0
	}
	return simtime.Duration(tr.Events[len(tr.Events)-1].At) + 1
}

// Tenants returns the distinct tenant names in first-appearance order.
func (tr *Trace) Tenants() []string {
	seen := make(map[string]bool)
	var out []string
	for _, ev := range tr.Events {
		if !seen[ev.Tenant] {
			seen[ev.Tenant] = true
			out = append(out, ev.Tenant)
		}
	}
	return out
}

// ParseTrace reads a CSV trace. It is strict: the exact header, exactly
// six fields per row, bounded field sizes, non-negative numerics, and
// non-decreasing timestamps — any violation is an error naming the line.
// Malformed input can never panic (see FuzzTraceParse).
func ParseTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024), maxTraceLine)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("workload: trace header: %w", err)
		}
		return nil, fmt.Errorf("workload: empty trace (missing header %q)", TraceHeader)
	}
	if got := strings.TrimRight(sc.Text(), "\r"); got != TraceHeader {
		return nil, fmt.Errorf("workload: trace header %q, want %q", got, TraceHeader)
	}
	tr := &Trace{}
	line := 1
	var last simtime.Time
	for sc.Scan() {
		line++
		raw := strings.TrimRight(sc.Text(), "\r")
		if raw == "" {
			continue // a trailing newline is not a row
		}
		f := strings.Split(raw, ",")
		if len(f) != 6 {
			return nil, fmt.Errorf("workload: trace line %d: %d fields, want 6", line, len(f))
		}
		at, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil || at < 0 {
			return nil, fmt.Errorf("workload: trace line %d: bad arrival_ns %q", line, f[0])
		}
		if simtime.Time(at) < last {
			return nil, fmt.Errorf("workload: trace line %d: arrival %d before predecessor %d (trace must be time-ordered)", line, at, last)
		}
		tenant, object := f[1], f[2]
		if tenant == "" || len(tenant) > maxTraceField {
			return nil, fmt.Errorf("workload: trace line %d: bad tenant name (%d bytes)", line, len(tenant))
		}
		if object == "" || len(object) > maxTraceField {
			return nil, fmt.Errorf("workload: trace line %d: bad object name (%d bytes)", line, len(object))
		}
		fn, err := strconv.ParseUint(f[3], 0, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad fn %q", line, f[3])
		}
		class, err := strconv.Atoi(f[4])
		if err != nil || class < 0 || class >= maxTraceClass {
			return nil, fmt.Errorf("workload: trace line %d: bad class %q", line, f[4])
		}
		size, err := strconv.Atoi(f[5])
		if err != nil || size < 0 || size > maxTraceSize {
			return nil, fmt.Errorf("workload: trace line %d: bad size %q", line, f[5])
		}
		last = simtime.Time(at)
		tr.Events = append(tr.Events, Event{
			At: last, Tenant: tenant, Object: object, Fn: fn, Class: class, Size: size,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: trace line %d: %w", line+1, err)
	}
	return tr, nil
}

// WriteTrace writes the trace in the exact format ParseTrace reads; the
// round trip is byte-identical, which is what lets a generated workload
// be committed and replayed as a golden scenario.
func WriteTrace(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(TraceHeader + "\n"); err != nil {
		return err
	}
	for _, ev := range tr.Events {
		if _, err := fmt.Fprintf(bw, "%d,%s,%s,0x%x,%d,%d\n",
			int64(ev.At), ev.Tenant, ev.Object, ev.Fn, ev.Class, ev.Size); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTraceFile parses the trace at path.
func ReadTraceFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseTrace(f)
}

// WriteTraceFile writes the trace to path.
func WriteTraceFile(path string, tr *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTrace(f, tr); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
