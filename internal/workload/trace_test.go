package workload

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestWorkloadTraceRoundTrip: write(parse(write(tr))) is byte-identical
// and the parsed events match the originals field for field.
func TestWorkloadTraceRoundTrip(t *testing.T) {
	tr := &Trace{Events: []Event{
		{At: 0, Tenant: "web", Object: "wk-00", Fn: 0xF1EE0010, Class: 2, Size: 256},
		{At: 113, Tenant: "batch", Object: "wk-03", Fn: 7, Class: 0, Size: 1024},
		{At: 113, Tenant: "web", Object: "wk-01", Fn: 0xF1EE0010, Class: 2, Size: 256},
		{At: 999_999, Tenant: "svc", Object: "wk-02", Fn: 0, Class: 1, Size: 64},
	}}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ParseTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events, tr.Events) {
		t.Fatalf("round trip drifted:\n%+v\nvs\n%+v", got.Events, tr.Events)
	}
	var again bytes.Buffer
	if err := WriteTrace(&again, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("second write not byte-identical")
	}
	if d := got.Duration(); d != 1_000_000 {
		t.Fatalf("Duration %d, want 1000000", d)
	}
	if tn := got.Tenants(); !reflect.DeepEqual(tn, []string{"web", "batch", "svc"}) {
		t.Fatalf("Tenants %v", tn)
	}
}

// TestWorkloadTraceParseErrors: every malformed shape errors with the
// offending line, and never panics.
func TestWorkloadTraceParseErrors(t *testing.T) {
	hdr := TraceHeader + "\n"
	cases := []struct {
		name, in, want string
	}{
		{"empty", "", "missing header"},
		{"wrong header", "time,who\n", "header"},
		{"five fields", hdr + "1,a,b,0,0\n", "fields"},
		{"seven fields", hdr + "1,a,b,0,0,1,extra\n", "fields"},
		{"negative time", hdr + "-5,a,b,0,0,1\n", "arrival_ns"},
		{"non-numeric time", hdr + "soon,a,b,0,0,1\n", "arrival_ns"},
		{"out of order", hdr + "10,a,b,0,0,1\n5,a,b,0,0,1\n", "time-ordered"},
		{"empty tenant", hdr + "1,,b,0,0,1\n", "tenant"},
		{"huge tenant", hdr + "1," + strings.Repeat("x", 300) + ",b,0,0,1\n", "tenant"},
		{"empty object", hdr + "1,a,,0,0,1\n", "object"},
		{"bad fn", hdr + "1,a,b,zz,0,1\n", "fn"},
		{"negative class", hdr + "1,a,b,0,-1,1\n", "class"},
		{"class overflow", hdr + "1,a,b,0,9999,1\n", "class"},
		{"negative size", hdr + "1,a,b,0,0,-2\n", "size"},
		{"size overflow", hdr + "1,a,b,0,0,99999999999\n", "size"},
		{"giant line", hdr + "1,a,b,0,0," + strings.Repeat("1", 8192) + "\n", ""},
	}
	for _, tc := range cases {
		_, err := ParseTrace(strings.NewReader(tc.in))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestWorkloadTraceParseLenient: the shapes that must NOT error — hex
// fns, equal timestamps, CRLF endings, trailing blank lines.
func TestWorkloadTraceParseLenient(t *testing.T) {
	in := TraceHeader + "\r\n" +
		"5,a,b,0xff,0,64\r\n" +
		"5,c,d,255,1,64\n" +
		"\n"
	tr, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 2 {
		t.Fatalf("%d events, want 2", len(tr.Events))
	}
	if tr.Events[0].Fn != 255 || tr.Events[1].Fn != 255 {
		t.Fatalf("hex/decimal fn mismatch: %+v", tr.Events)
	}
}
