// Package workload provides the deterministic load generators the
// experiments share: key-popularity distributions (uniform, zipfian),
// packet-size streams, and Poisson arrival processes. Everything is seeded
// explicitly so experiment reruns are bit-identical.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/elisa-go/elisa/internal/simtime"
)

// KeyChooser picks key indices in [0, n).
type KeyChooser interface {
	Next() int
}

// Uniform picks keys uniformly at random.
type Uniform struct {
	rng *rand.Rand
	n   int
}

// NewUniform returns a uniform chooser over [0, n).
func NewUniform(seed int64, n int) (*Uniform, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: uniform over %d keys", n)
	}
	return &Uniform{rng: rand.New(rand.NewSource(seed)), n: n}, nil
}

// Next returns the next key index.
func (u *Uniform) Next() int { return u.rng.Intn(u.n) }

// Zipf picks keys with a zipfian popularity skew (the classic KV-store
// workload shape; YCSB uses s≈0.99). Skews in (0,1) use the Gray et al.
// generator ("Quickly Generating Billion-Record Synthetic Databases",
// the YCSB ZipfianGenerator); skews above 1 keep the original math/rand
// path, so existing s=1.01 callers reproduce their historical streams.
type Zipf struct {
	z *rand.Zipf // s > 1: legacy math/rand path

	// Gray et al. state, 0 < s < 1. The closed-form inverse needs only
	// zeta(n,s) (computed once at construction), so Next is O(1).
	rng   *rand.Rand
	n     float64
	zetan float64 // zeta(n, s) = sum_{i=1..n} 1/i^s
	alpha float64 // 1/(1-s)
	eta   float64 // (1-(2/n)^(1-s)) / (1 - zeta(2,s)/zeta(n,s))
	half  float64 // 0.5^s
	max   int     // n-1, the clamp for floating-point edge cases
}

// NewZipf returns a zipfian chooser over [0, n) with skew s: index 0 is
// the most popular key. Any positive skew except exactly 1 is accepted
// (use 0.99 or 1.01 around the harmonic singularity).
func NewZipf(seed int64, n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: zipf over %d keys", n)
	}
	if s <= 0 || s == 1 {
		return nil, fmt.Errorf("workload: zipf skew %v must be positive and not exactly 1", s)
	}
	rng := rand.New(rand.NewSource(seed))
	if s > 1 {
		z := rand.NewZipf(rng, s, 1, uint64(n-1))
		if z == nil {
			return nil, fmt.Errorf("workload: invalid zipf parameters (s=%v, n=%d)", s, n)
		}
		return &Zipf{z: z}, nil
	}
	zeta2, zetan := 0.0, 0.0
	for i := 1; i <= n; i++ {
		zetan += 1 / math.Pow(float64(i), s)
		if i == 2 {
			zeta2 = zetan
		}
	}
	if n == 1 {
		zeta2 = zetan // degenerate single-key universe: Next is always 0
	}
	return &Zipf{
		rng:   rng,
		n:     float64(n),
		zetan: zetan,
		alpha: 1 / (1 - s),
		eta:   (1 - math.Pow(2/float64(n), 1-s)) / (1 - zeta2/zetan),
		half:  math.Pow(0.5, s),
		max:   n - 1,
	}, nil
}

// Next returns the next key index.
func (z *Zipf) Next() int {
	if z.z != nil {
		return int(z.z.Uint64())
	}
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+z.half {
		return 1
	}
	k := int(z.n * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if k < 0 {
		k = 0
	}
	if k > z.max {
		k = z.max
	}
	return k
}

// Mix flips a weighted coin for read-vs-write style choices.
type Mix struct {
	rng       *rand.Rand
	readRatio float64
}

// NewMix returns a generator where Read() is true with probability
// readRatio.
func NewMix(seed int64, readRatio float64) (*Mix, error) {
	if readRatio < 0 || readRatio > 1 {
		return nil, fmt.Errorf("workload: read ratio %v outside [0,1]", readRatio)
	}
	return &Mix{rng: rand.New(rand.NewSource(seed)), readRatio: readRatio}, nil
}

// Read reports whether the next operation is a read.
func (m *Mix) Read() bool { return m.rng.Float64() < m.readRatio }

// Poisson generates exponentially distributed inter-arrival times for an
// open-loop arrival process with the given mean rate (arrivals/second of
// simulated time).
type Poisson struct {
	rng  *rand.Rand
	mean float64 // mean inter-arrival in ns
}

// NewPoisson returns a Poisson arrival process with ratePerSec arrivals
// per simulated second.
func NewPoisson(seed int64, ratePerSec float64) (*Poisson, error) {
	if ratePerSec <= 0 {
		return nil, fmt.Errorf("workload: poisson rate %v must be positive", ratePerSec)
	}
	return &Poisson{
		rng:  rand.New(rand.NewSource(seed)),
		mean: 1e9 / ratePerSec,
	}, nil
}

// NextInterval returns the next inter-arrival gap.
func (p *Poisson) NextInterval() simtime.Duration {
	d := simtime.Duration(math.Round(p.rng.ExpFloat64() * p.mean))
	if d < 1 {
		d = 1
	}
	return d
}

// PacketSizes is the fixed sweep the paper's networking figures use.
var PacketSizes = []int{64, 128, 256, 512, 1024, 1472}

// FillPattern deterministically fills p so payload corruption is
// detectable: byte i of stream element k is a function of (k, i).
func FillPattern(p []byte, k int) {
	for i := range p {
		p[i] = byte(k*131 + i*7 + 3)
	}
}

// CheckPattern verifies a buffer previously filled with FillPattern.
func CheckPattern(p []byte, k int) bool {
	for i := range p {
		if p[i] != byte(k*131+i*7+3) {
			return false
		}
	}
	return true
}
