package workload

import (
	"testing"
	"testing/quick"
)

func TestUniformBoundsAndDeterminism(t *testing.T) {
	u1, err := NewUniform(42, 100)
	if err != nil {
		t.Fatal(err)
	}
	u2, _ := NewUniform(42, 100)
	for i := 0; i < 1000; i++ {
		a, b := u1.Next(), u2.Next()
		if a != b {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a, b)
		}
		if a < 0 || a >= 100 {
			t.Fatalf("out of range: %d", a)
		}
	}
	if _, err := NewUniform(1, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestUniformCoversKeyspace(t *testing.T) {
	u, _ := NewUniform(7, 10)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		seen[u.Next()] = true
	}
	if len(seen) != 10 {
		t.Fatalf("only %d/10 keys seen", len(seen))
	}
}

func TestZipfSkew(t *testing.T) {
	z, err := NewZipf(1, 1000, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 1000)
	for i := 0; i < 100_000; i++ {
		k := z.Next()
		if k < 0 || k >= 1000 {
			t.Fatalf("out of range: %d", k)
		}
		counts[k]++
	}
	// Head must be much hotter than the tail.
	if counts[0] < 10*counts[500]+1 {
		t.Fatalf("no skew: head=%d mid=%d", counts[0], counts[500])
	}
	if _, err := NewZipf(1, 0, 1.2); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewZipf(1, 100, 0); err == nil {
		t.Fatal("s=0 accepted")
	}
	if _, err := NewZipf(1, 100, -0.5); err == nil {
		t.Fatal("negative skew accepted")
	}
	if _, err := NewZipf(1, 100, 1); err == nil {
		t.Fatal("s=1 (harmonic singularity) accepted")
	}
}

func TestMixRatio(t *testing.T) {
	m, err := NewMix(3, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	reads := 0
	for i := 0; i < 10_000; i++ {
		if m.Read() {
			reads++
		}
	}
	if reads < 8800 || reads > 9200 {
		t.Fatalf("read fraction %.3f, want ~0.9", float64(reads)/10000)
	}
	if _, err := NewMix(1, 1.5); err == nil {
		t.Fatal("ratio > 1 accepted")
	}
}

func TestPoissonMeanRate(t *testing.T) {
	p, err := NewPoisson(11, 1_000_000) // 1M/s => mean gap 1000ns
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	const n = 50_000
	for i := 0; i < n; i++ {
		g := p.NextInterval()
		if g < 1 {
			t.Fatalf("non-positive gap %v", g)
		}
		total += int64(g)
	}
	mean := float64(total) / n
	if mean < 950 || mean > 1050 {
		t.Fatalf("mean gap %.1fns, want ~1000", mean)
	}
	if _, err := NewPoisson(1, 0); err == nil {
		t.Fatal("zero rate accepted")
	}
}

func TestFillCheckPattern(t *testing.T) {
	f := func(k uint8, n uint8) bool {
		buf := make([]byte, int(n)+1)
		FillPattern(buf, int(k))
		if !CheckPattern(buf, int(k)) {
			return false
		}
		// A flipped byte must be detected.
		buf[len(buf)/2] ^= 0xff
		return !CheckPattern(buf, int(k))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPacketSizesMatchPaperSweep(t *testing.T) {
	want := []int{64, 128, 256, 512, 1024, 1472}
	if len(PacketSizes) != len(want) {
		t.Fatalf("sweep length %d", len(PacketSizes))
	}
	for i, v := range want {
		if PacketSizes[i] != v {
			t.Fatalf("sweep[%d] = %d, want %d", i, PacketSizes[i], v)
		}
	}
}
