package workload

import (
	"math"
	"math/rand"
	"testing"
)

// TestWorkloadZipfGrayShape checks the Gray et al. path against the
// closed-form zipfian pmf at YCSB's s=0.99: the empirical frequency of
// each head rank must sit near 1/(rank+1)^s / zeta(n,s), and popularity
// must fall monotonically down the head.
func TestWorkloadZipfGrayShape(t *testing.T) {
	const (
		n     = 100
		s     = 0.99
		draws = 400_000
	)
	z, err := NewZipf(9, n, s)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		k := z.Next()
		if k < 0 || k >= n {
			t.Fatalf("out of range: %d", k)
		}
		counts[k]++
	}
	var zetan float64
	for i := 1; i <= n; i++ {
		zetan += 1 / math.Pow(float64(i), s)
	}
	for _, rank := range []int{0, 1, 2, 4, 9} {
		want := 1 / math.Pow(float64(rank+1), s) / zetan
		got := float64(counts[rank]) / draws
		if math.Abs(got-want) > 0.15*want {
			t.Errorf("rank %d: empirical %.4f, pmf %.4f (>15%% off)", rank, got, want)
		}
	}
	if !(counts[0] > counts[4] && counts[4] > counts[20] && counts[20] > counts[80]) {
		t.Errorf("popularity not falling down the head: %d/%d/%d/%d",
			counts[0], counts[4], counts[20], counts[80])
	}
}

// TestWorkloadZipfLegacyPathCompat pins the s>1 compatibility contract:
// the old math/rand path still backs skews above 1, so existing s=1.01
// callers reproduce their historical streams bit-for-bit.
func TestWorkloadZipfLegacyPathCompat(t *testing.T) {
	const (
		seed = 77
		n    = 500
		s    = 1.01
	)
	z, err := NewZipf(seed, n, s)
	if err != nil {
		t.Fatalf("s=1.01 must stay accepted: %v", err)
	}
	want := rand.NewZipf(rand.New(rand.NewSource(seed)), s, 1, uint64(n-1))
	for i := 0; i < 10_000; i++ {
		if got, legacy := z.Next(), int(want.Uint64()); got != legacy {
			t.Fatalf("draw %d: %d, legacy math/rand path %d", i, got, legacy)
		}
	}
}

// TestWorkloadZipfDeterminism: same seed, same stream; different seeds
// diverge — on both sides of the s=1 split.
func TestWorkloadZipfDeterminism(t *testing.T) {
	for _, s := range []float64{0.99, 1.2} {
		a, _ := NewZipf(5, 1000, s)
		b, _ := NewZipf(5, 1000, s)
		c, _ := NewZipf(6, 1000, s)
		same, diff := true, false
		for i := 0; i < 2000; i++ {
			av := a.Next()
			if av != b.Next() {
				same = false
			}
			if av != c.Next() {
				diff = true
			}
		}
		if !same {
			t.Errorf("s=%v: same-seed streams diverged", s)
		}
		if !diff {
			t.Errorf("s=%v: different seeds produced identical streams", s)
		}
	}
}

// TestWorkloadZipfSingleKey: the degenerate one-key universe always
// returns 0 and never divides by zero.
func TestWorkloadZipfSingleKey(t *testing.T) {
	z, err := NewZipf(3, 1, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if k := z.Next(); k != 0 {
			t.Fatalf("single-key zipf returned %d", k)
		}
	}
}
