package elisa

import (
	"fmt"

	"github.com/elisa-go/elisa/internal/core"
	"github.com/elisa-go/elisa/internal/hv"
	"github.com/elisa-go/elisa/internal/obs"
)

// newMetricsRegistry wires the machine's live state into a metrics
// registry. Collectors are pulled at Gather time, so every export is a
// fresh snapshot; nothing here samples or caches.
func newMetricsRegistry(h *hv.Hypervisor, mgr *core.Manager, rec *obs.Recorder) *obs.Registry {
	reg := obs.NewRegistry()
	reg.Register(collectMachine(h))
	reg.Register(collectManager(mgr))
	reg.Register(obs.CollectRecorder(rec))
	return reg
}

// collectMachine exports per-vCPU event counters (exits, VMFUNCs, TLB
// hits/misses) and host-level gauges.
func collectMachine(h *hv.Hypervisor) obs.Collector {
	return func() []obs.Metric {
		exits := obs.Metric{Name: "elisa_vcpu_exits_total",
			Help: "VM exits per vCPU (the slow path ELISA avoids).", Type: obs.TypeCounter}
		hypercalls := obs.Metric{Name: "elisa_vcpu_hypercalls_total",
			Help: "VMCALL hypercalls per vCPU.", Type: obs.TypeCounter}
		vmfuncs := obs.Metric{Name: "elisa_vcpu_vmfuncs_total",
			Help: "Exit-less VMFUNC EPTP switches per vCPU.", Type: obs.TypeCounter}
		tlbHits := obs.Metric{Name: "elisa_tlb_hits_total",
			Help: "Tagged-TLB hits per vCPU.", Type: obs.TypeCounter}
		tlbMisses := obs.Metric{Name: "elisa_tlb_misses_total",
			Help: "Tagged-TLB misses (EPT walks) per vCPU.", Type: obs.TypeCounter}
		for _, vm := range h.VMs() {
			st := vm.VCPU().Stats()
			labels := map[string]string{"vm": vm.Name()}
			exits.Samples = append(exits.Samples, obs.Sample{Labels: labels, Value: float64(st.Exits)})
			hypercalls.Samples = append(hypercalls.Samples, obs.Sample{Labels: labels, Value: float64(st.Hypercalls)})
			vmfuncs.Samples = append(vmfuncs.Samples, obs.Sample{Labels: labels, Value: float64(st.VMFuncs)})
			tlbHits.Samples = append(tlbHits.Samples, obs.Sample{Labels: labels, Value: float64(st.TLBHits)})
			tlbMisses.Samples = append(tlbMisses.Samples, obs.Sample{Labels: labels, Value: float64(st.TLBMisses)})
		}
		ms := h.MachineStats()
		return []obs.Metric{
			exits, hypercalls, vmfuncs, tlbHits, tlbMisses,
			{Name: "elisa_vms", Help: "Live VMs (manager included).", Type: obs.TypeGauge,
				Samples: []obs.Sample{{Value: float64(ms.VMs)}}},
			{Name: "elisa_vms_killed_total", Help: "VMs killed for protocol violations.", Type: obs.TypeCounter,
				Samples: []obs.Sample{{Value: float64(ms.Killed)}}},
			{Name: "elisa_trace_events_total", Help: "Slow-path trace events ever emitted.", Type: obs.TypeCounter,
				Samples: []obs.Sample{{Value: float64(ms.TraceEmitted)}}},
		}
	}
}

// collectManager exports the manager's per-attachment accounting.
func collectManager(mgr *core.Manager) obs.Collector {
	return func() []obs.Metric {
		calls := obs.Metric{Name: "elisa_attachment_calls_total",
			Help: "Manager-function invocations per attachment.", Type: obs.TypeCounter}
		fnErrors := obs.Metric{Name: "elisa_attachment_fn_errors_total",
			Help: "Manager-function errors per attachment.", Type: obs.TypeCounter}
		live := 0
		for _, st := range mgr.Stats() {
			if !st.Revoked {
				live++
			}
			labels := map[string]string{"guest": st.Guest, "object": st.Object,
				"slot": fmt.Sprintf("%d", st.SubIndex)}
			calls.Samples = append(calls.Samples, obs.Sample{Labels: labels, Value: float64(st.Calls)})
			fnErrors.Samples = append(fnErrors.Samples, obs.Sample{Labels: labels, Value: float64(st.FnErrors)})
		}
		return []obs.Metric{
			calls, fnErrors,
			{Name: "elisa_attachments", Help: "Live (non-revoked) attachments.", Type: obs.TypeGauge,
				Samples: []obs.Sample{{Value: float64(live)}}},
			{Name: "elisa_objects", Help: "Registered shared objects.", Type: obs.TypeGauge,
				Samples: []obs.Sample{{Value: float64(len(mgr.ObjectNames()))}}},
		}
	}
}
