package elisa

import (
	"fmt"
	"sort"

	"github.com/elisa-go/elisa/internal/cluster"
	"github.com/elisa-go/elisa/internal/core"
	"github.com/elisa-go/elisa/internal/ept"
	"github.com/elisa-go/elisa/internal/fault"
	"github.com/elisa-go/elisa/internal/fleet"
	"github.com/elisa-go/elisa/internal/hv"
	"github.com/elisa-go/elisa/internal/obs"
)

// newMetricsRegistry wires the machine's live state into a metrics
// registry. Collectors are pulled at Gather time, so every export is a
// fresh snapshot; nothing here samples or caches.
func newMetricsRegistry(h *hv.Hypervisor, mgr *core.Manager, rec *obs.Recorder) *obs.Registry {
	reg := obs.NewRegistry()
	reg.Register(collectMachine(h))
	reg.Register(collectManager(mgr))
	reg.Register(collectSlots(mgr))
	reg.Register(collectRings(mgr))
	reg.Register(collectOverload(mgr))
	reg.Register(collectFaults(h, mgr))
	reg.Register(obs.CollectRecorder(rec))
	reg.Register(obs.CollectCausal(rec.Causal()))
	return reg
}

// collectRings exports the exit-less ring datapath: per-ring queue
// occupancy, lifetime descriptor counters split by drain side (guest
// gate flush vs. manager poller), and batch-size quantiles — the
// amortisation factor of the 196 ns crossing.
func collectRings(mgr *core.Manager) obs.Collector {
	return func() []obs.Metric {
		queued := obs.Metric{Name: "elisa_ring_queued",
			Help: "Descriptors waiting in the submission queue.", Type: obs.TypeGauge}
		ready := obs.Metric{Name: "elisa_ring_ready",
			Help: "Completions drained but not yet polled by the guest.", Type: obs.TypeGauge}
		depth := obs.Metric{Name: "elisa_ring_depth",
			Help: "Negotiated ring depth (slots).", Type: obs.TypeGauge}
		submitted := obs.Metric{Name: "elisa_ring_submitted_total",
			Help: "Descriptors ever submitted.", Type: obs.TypeCounter}
		completed := obs.Metric{Name: "elisa_ring_completed_total",
			Help: "Completions ever produced.", Type: obs.TypeCounter}
		kicks := obs.Metric{Name: "elisa_ring_kicks_total",
			Help: "Empty-to-non-empty doorbell rings (in-memory, exit-less).", Type: obs.TypeCounter}
		drains := obs.Metric{Name: "elisa_ring_drains_total",
			Help: "Drain passes that serviced at least one descriptor, by side (flush = guest gate crossing, poll = manager poller).", Type: obs.TypeCounter}
		drained := obs.Metric{Name: "elisa_ring_drained_total",
			Help: "Descriptors serviced, by drain side.", Type: obs.TypeCounter}
		failed := obs.Metric{Name: "elisa_ring_failed_total",
			Help: "Descriptors completed administratively (CompErr) on revoke or detach.", Type: obs.TypeCounter}
		batch := obs.Metric{Name: "elisa_ring_batch_size",
			Help: "Batch-size quantiles: descriptors serviced per drain pass.", Type: obs.TypeGauge}
		for _, rs := range mgr.RingStats() {
			labels := map[string]string{"guest": rs.Guest, "object": rs.Object}
			flushL := map[string]string{"guest": rs.Guest, "object": rs.Object, "side": "flush"}
			pollL := map[string]string{"guest": rs.Guest, "object": rs.Object, "side": "poll"}
			queued.Samples = append(queued.Samples, obs.Sample{Labels: labels, Value: float64(rs.Queued)})
			ready.Samples = append(ready.Samples, obs.Sample{Labels: labels, Value: float64(rs.Ready)})
			depth.Samples = append(depth.Samples, obs.Sample{Labels: labels, Value: float64(rs.Depth)})
			submitted.Samples = append(submitted.Samples, obs.Sample{Labels: labels, Value: float64(rs.Submitted)})
			completed.Samples = append(completed.Samples, obs.Sample{Labels: labels, Value: float64(rs.Completed)})
			kicks.Samples = append(kicks.Samples, obs.Sample{Labels: labels, Value: float64(rs.Kicks)})
			drains.Samples = append(drains.Samples,
				obs.Sample{Labels: flushL, Value: float64(rs.Flushes)},
				obs.Sample{Labels: pollL, Value: float64(rs.Drains)})
			drained.Samples = append(drained.Samples,
				obs.Sample{Labels: flushL, Value: float64(rs.Flushed)},
				obs.Sample{Labels: pollL, Value: float64(rs.Drained)})
			failed.Samples = append(failed.Samples, obs.Sample{Labels: labels, Value: float64(rs.Failed)})
			batch.Samples = append(batch.Samples,
				obs.Sample{Labels: map[string]string{"guest": rs.Guest, "object": rs.Object, "q": "p50"}, Value: float64(rs.BatchP50)},
				obs.Sample{Labels: map[string]string{"guest": rs.Guest, "object": rs.Object, "q": "p99"}, Value: float64(rs.BatchP99)})
		}
		return []obs.Metric{queued, ready, depth, submitted, completed, kicks, drains, drained, failed, batch}
	}
}

// collectOverload exports the overload-control datapath: per-ring busy
// bounces and the retries they provoked. All-zero (but still present)
// when overload control is disarmed, so dashboards can alert on the
// first bounce.
func collectOverload(mgr *core.Manager) obs.Collector {
	return func() []obs.Metric {
		busy := obs.Metric{Name: "elisa_overload_busy_total",
			Help: "Descriptors bounced back CompBusy by drain-budget overload control.", Type: obs.TypeCounter}
		retry := obs.Metric{Name: "elisa_overload_retry_total",
			Help: "Guest-side backoff re-submissions after a CompBusy bounce.", Type: obs.TypeCounter}
		for _, rs := range mgr.RingStats() {
			labels := map[string]string{"guest": rs.Guest, "object": rs.Object}
			busy.Samples = append(busy.Samples, obs.Sample{Labels: labels, Value: float64(rs.Busied)})
			retry.Samples = append(retry.Samples, obs.Sample{Labels: labels, Value: float64(rs.Retried)})
		}
		return []obs.Metric{busy, retry}
	}
}

// collectMachine exports per-vCPU event counters (exits, VMFUNCs, TLB
// hits/misses) and host-level gauges.
func collectMachine(h *hv.Hypervisor) obs.Collector {
	return func() []obs.Metric {
		exits := obs.Metric{Name: "elisa_vcpu_exits_total",
			Help: "VM exits per vCPU (the slow path ELISA avoids).", Type: obs.TypeCounter}
		hypercalls := obs.Metric{Name: "elisa_vcpu_hypercalls_total",
			Help: "VMCALL hypercalls per vCPU.", Type: obs.TypeCounter}
		vmfuncs := obs.Metric{Name: "elisa_vcpu_vmfuncs_total",
			Help: "Exit-less VMFUNC EPTP switches per vCPU.", Type: obs.TypeCounter}
		tlbHits := obs.Metric{Name: "elisa_tlb_hits_total",
			Help: "Tagged-TLB hits per vCPU.", Type: obs.TypeCounter}
		tlbMisses := obs.Metric{Name: "elisa_tlb_misses_total",
			Help: "Tagged-TLB misses (EPT walks) per vCPU.", Type: obs.TypeCounter}
		for _, vm := range h.VMs() {
			st := vm.VCPU().Stats()
			labels := map[string]string{"vm": vm.Name()}
			exits.Samples = append(exits.Samples, obs.Sample{Labels: labels, Value: float64(st.Exits)})
			hypercalls.Samples = append(hypercalls.Samples, obs.Sample{Labels: labels, Value: float64(st.Hypercalls)})
			vmfuncs.Samples = append(vmfuncs.Samples, obs.Sample{Labels: labels, Value: float64(st.VMFuncs)})
			tlbHits.Samples = append(tlbHits.Samples, obs.Sample{Labels: labels, Value: float64(st.TLBHits)})
			tlbMisses.Samples = append(tlbMisses.Samples, obs.Sample{Labels: labels, Value: float64(st.TLBMisses)})
		}
		ms := h.MachineStats()
		return []obs.Metric{
			exits, hypercalls, vmfuncs, tlbHits, tlbMisses,
			{Name: "elisa_vms", Help: "Live VMs (manager included).", Type: obs.TypeGauge,
				Samples: []obs.Sample{{Value: float64(ms.VMs)}}},
			{Name: "elisa_vms_killed_total", Help: "VMs killed for protocol violations.", Type: obs.TypeCounter,
				Samples: []obs.Sample{{Value: float64(ms.Killed)}}},
			{Name: "elisa_trace_events_total", Help: "Slow-path trace events ever emitted.", Type: obs.TypeCounter,
				Samples: []obs.Sample{{Value: float64(ms.TraceEmitted)}}},
		}
	}
}

// collectManager exports the manager's per-attachment accounting.
func collectManager(mgr *core.Manager) obs.Collector {
	return func() []obs.Metric {
		calls := obs.Metric{Name: "elisa_attachment_calls_total",
			Help: "Manager-function invocations per attachment.", Type: obs.TypeCounter}
		fnErrors := obs.Metric{Name: "elisa_attachment_fn_errors_total",
			Help: "Manager-function errors per attachment.", Type: obs.TypeCounter}
		live := 0
		for _, st := range mgr.Stats() {
			if !st.Revoked {
				live++
			}
			labels := map[string]string{"guest": st.Guest, "object": st.Object,
				"slot": fmt.Sprintf("%d", st.SubIndex)}
			calls.Samples = append(calls.Samples, obs.Sample{Labels: labels, Value: float64(st.Calls)})
			fnErrors.Samples = append(fnErrors.Samples, obs.Sample{Labels: labels, Value: float64(st.FnErrors)})
		}
		return []obs.Metric{
			calls, fnErrors,
			{Name: "elisa_attachments", Help: "Live (non-revoked) attachments.", Type: obs.TypeGauge,
				Samples: []obs.Sample{{Value: float64(live)}}},
			{Name: "elisa_objects", Help: "Registered shared objects.", Type: obs.TypeGauge,
				Samples: []obs.Sample{{Value: float64(len(mgr.ObjectNames()))}}},
		}
	}
}

// collectSlots exports the slot-virtualisation layer: per-guest occupancy
// of the 512-entry EPTP list, and the slow-path remap counters (faults =
// HCSlotFault re-binds, evictions = LRU displacements). fault rate over
// time is the fleet's remap rate.
func collectSlots(mgr *core.Manager) obs.Collector {
	capacity := float64(ept.ListEntries - 2) // minus default + gate slots
	return func() []obs.Metric {
		budget := obs.Metric{Name: "elisa_slot_budget",
			Help: "Physical EPTP-list slots a guest may occupy at once.", Type: obs.TypeGauge}
		backed := obs.Metric{Name: "elisa_slot_backed",
			Help: "Physical EPTP-list slots a guest occupies now.", Type: obs.TypeGauge}
		occupancy := obs.Metric{Name: "elisa_slot_occupancy_ratio",
			Help: "Backed slots over the guest's budget.", Type: obs.TypeGauge}
		virtual := obs.Metric{Name: "elisa_slot_virtual_only",
			Help: "Live attachments currently without a physical slot.", Type: obs.TypeGauge}
		faults := obs.Metric{Name: "elisa_slot_faults_total",
			Help: "HCSlotFault re-binds (the virtualised slow path).", Type: obs.TypeCounter}
		evictions := obs.Metric{Name: "elisa_slot_evictions_total",
			Help: "LRU slot evictions.", Type: obs.TypeCounter}
		totalBacked := 0.0
		for _, ss := range mgr.SlotStats() {
			labels := map[string]string{"guest": ss.Guest}
			budget.Samples = append(budget.Samples, obs.Sample{Labels: labels, Value: float64(ss.Budget)})
			backed.Samples = append(backed.Samples, obs.Sample{Labels: labels, Value: float64(ss.Backed)})
			if ss.Budget > 0 {
				occupancy.Samples = append(occupancy.Samples, obs.Sample{Labels: labels,
					Value: float64(ss.Backed) / float64(ss.Budget)})
			}
			virtual.Samples = append(virtual.Samples, obs.Sample{Labels: labels,
				Value: float64(ss.Live - ss.Backed)})
			faults.Samples = append(faults.Samples, obs.Sample{Labels: labels, Value: float64(ss.Faults)})
			evictions.Samples = append(evictions.Samples, obs.Sample{Labels: labels, Value: float64(ss.Evictions)})
			totalBacked += float64(ss.Backed)
		}
		return []obs.Metric{
			budget, backed, occupancy, virtual, faults, evictions,
			{Name: "elisa_slot_list_capacity", Help: "Backable sub-context slots per EPTP list.",
				Type: obs.TypeGauge, Samples: []obs.Sample{{Value: capacity}}},
			{Name: "elisa_slot_backed_total", Help: "Backed slots machine-wide.",
				Type: obs.TypeGauge, Samples: []obs.Sample{{Value: totalBacked}}},
		}
	}
}

// collectFaults exports the chaos layer: injected-fault counters by class
// and by guest (from the armed injector, empty when chaos is off), crash
// accounting, and the manager's recovery-side counters — quarantines,
// mid-gate deaths, Fsck repairs, negotiation retries.
func collectFaults(h *hv.Hypervisor, mgr *core.Manager) obs.Collector {
	return func() []obs.Metric {
		injections := obs.Metric{Name: "elisa_fault_injections_total",
			Help: "Injected faults consummated, by class.", Type: obs.TypeCounter}
		hits := obs.Metric{Name: "elisa_fault_guest_hits_total",
			Help: "Injected faults that landed on each guest.", Type: obs.TypeCounter}
		pending := 0.0
		inj := mgr.Injector()
		if inj != nil {
			byClass := inj.FiredByClass()
			for _, c := range fault.Classes {
				injections.Samples = append(injections.Samples, obs.Sample{
					Labels: map[string]string{"class": string(c)}, Value: float64(byClass[c])})
			}
			byGuest := inj.FiredByGuest()
			guests := make([]string, 0, len(byGuest))
			for g := range byGuest {
				guests = append(guests, g)
			}
			sort.Strings(guests)
			for _, g := range guests {
				hits.Samples = append(hits.Samples, obs.Sample{
					Labels: map[string]string{"guest": g}, Value: float64(byGuest[g])})
			}
			pending = float64(inj.Pending())
		}
		rs := mgr.RecoveryStats()
		recovery := obs.Metric{Name: "elisa_recovery_total",
			Help: "Recovery actions by kind: quarantines of dead guests, mid-gate deaths among them, Fsck list repairs, guest negotiation retries.",
			Type: obs.TypeCounter,
			Samples: []obs.Sample{
				{Labels: map[string]string{"kind": "quarantine"}, Value: float64(rs.Recoveries)},
				{Labels: map[string]string{"kind": "mid-gate-death"}, Value: float64(rs.MidGateDeaths)},
				{Labels: map[string]string{"kind": "fsck-repair"}, Value: float64(rs.Repairs)},
				{Labels: map[string]string{"kind": "retry"}, Value: float64(rs.Retries)},
			}}
		return []obs.Metric{
			injections, hits, recovery,
			{Name: "elisa_fault_injections_pending", Help: "Armed injections not yet fired.",
				Type: obs.TypeGauge, Samples: []obs.Sample{{Value: pending}}},
			{Name: "elisa_vms_crashed_total", Help: "VMs dead by crash (injected or organic), not protocol kills.",
				Type: obs.TypeCounter, Samples: []obs.Sample{{Value: float64(h.MachineStats().Crashed)}}},
		}
	}
}

// collectCluster exports the sharded control plane: per-shard goodput,
// slot occupancy, placed objects, call counters, and the cluster-wide
// max/mean load imbalance ratio plus MoveObject rebalance count.
func collectCluster(c *cluster.Cluster) obs.Collector {
	return func() []obs.Metric {
		goodput := obs.Metric{Name: "elisa_cluster_goodput_ops",
			Help: "Completed fleet ops per simulated second, per shard.", Type: obs.TypeGauge}
		occupancy := obs.Metric{Name: "elisa_cluster_occupancy_ratio",
			Help: "Backed EPTP-list slots over budget, per shard.", Type: obs.TypeGauge}
		objects := obs.Metric{Name: "elisa_cluster_objects",
			Help: "Shared objects placed on each shard.", Type: obs.TypeGauge}
		guests := obs.Metric{Name: "elisa_cluster_guests",
			Help: "Guests holding ELISA state on each shard.", Type: obs.TypeGauge}
		calls := obs.Metric{Name: "elisa_cluster_calls_total",
			Help: "Exit-less manager-function calls routed to each shard.", Type: obs.TypeCounter}
		remaps := obs.Metric{Name: "elisa_cluster_slot_remaps_total",
			Help: "HCSlotFault slot re-binds on each shard.", Type: obs.TypeCounter}
		laneWindows := obs.Metric{Name: "elisa_fleet_lane_windows_total",
			Help: "Scheduling windows executed by each cluster fleet's lane runner.", Type: obs.TypeCounter}
		laneParallel := obs.Metric{Name: "elisa_fleet_lane_parallel_total",
			Help: "Windows fanned out to >1 concurrent shard lanes.", Type: obs.TypeCounter}
		laneForced := obs.Metric{Name: "elisa_fleet_lane_forced_serial_total",
			Help: "Windows demoted to serial execution by shared order-sensitive state (global admission buckets, decision trace).", Type: obs.TypeCounter}
		laneRuns := obs.Metric{Name: "elisa_fleet_lane_runs_total",
			Help: "Individual shard-lane executions across all windows.", Type: obs.TypeCounter}
		laneCap := obs.Metric{Name: "elisa_fleet_lane_parallelism",
			Help: "Configured lane cap (FleetConfig.Parallelism; <=1 is serial).", Type: obs.TypeGauge}
		for i, f := range c.Fleets() {
			ls := f.LaneStats()
			labels := map[string]string{"fleet": fmt.Sprintf("%d", i)}
			laneWindows.Samples = append(laneWindows.Samples, obs.Sample{Labels: labels, Value: float64(ls.Windows)})
			laneParallel.Samples = append(laneParallel.Samples, obs.Sample{Labels: labels, Value: float64(ls.Parallel)})
			laneForced.Samples = append(laneForced.Samples, obs.Sample{Labels: labels, Value: float64(ls.ForcedSerial)})
			laneRuns.Samples = append(laneRuns.Samples, obs.Sample{Labels: labels, Value: float64(ls.LaneRuns)})
			laneCap.Samples = append(laneCap.Samples, obs.Sample{Labels: labels, Value: float64(ls.Parallelism)})
		}
		st := c.Stats()
		for _, ss := range st.Shards {
			labels := map[string]string{"shard": fmt.Sprintf("%d", ss.ID)}
			goodput.Samples = append(goodput.Samples, obs.Sample{Labels: labels, Value: ss.GoodputOPS})
			occupancy.Samples = append(occupancy.Samples, obs.Sample{Labels: labels, Value: ss.Occupancy})
			objects.Samples = append(objects.Samples, obs.Sample{Labels: labels, Value: float64(ss.Objects)})
			guests.Samples = append(guests.Samples, obs.Sample{Labels: labels, Value: float64(ss.Guests)})
			calls.Samples = append(calls.Samples, obs.Sample{Labels: labels, Value: float64(ss.Calls)})
			remaps.Samples = append(remaps.Samples, obs.Sample{Labels: labels, Value: float64(ss.Remaps)})
		}
		return []obs.Metric{goodput, occupancy, objects, guests, calls, remaps,
			laneWindows, laneParallel, laneForced, laneRuns, laneCap,
			{Name: "elisa_cluster_shards", Help: "Manager shards in the cluster.", Type: obs.TypeGauge,
				Samples: []obs.Sample{{Value: float64(c.NumShards())}}},
			{Name: "elisa_cluster_imbalance_ratio",
				Help: "Max/mean per-shard load (calls when any, placed objects otherwise); 1.0 is perfectly balanced.",
				Type: obs.TypeGauge, Samples: []obs.Sample{{Value: st.Imbalance}}},
			{Name: "elisa_cluster_moves_total", Help: "MoveObject rebalances performed.", Type: obs.TypeCounter,
				Samples: []obs.Sample{{Value: float64(st.Moves)}}},
			{Name: "elisa_cluster_rebalances_total",
				Help: "Tenant migrations executed by the load-driven auto-rebalancer (each is one or more MoveObjects plus a fleet evict/adopt).",
				Type: obs.TypeCounter, Samples: []obs.Sample{{Value: float64(st.Rebalances)}}},
		}
	}
}

// collectFleet exports a fleet's per-tenant scheduling results: goodput,
// drop counters, and completion-latency quantiles.
func collectFleet(f *fleet.Scheduler) obs.Collector {
	return func() []obs.Metric {
		submitted := obs.Metric{Name: "elisa_fleet_submitted_total",
			Help: "Ops submitted per tenant.", Type: obs.TypeCounter}
		completed := obs.Metric{Name: "elisa_fleet_completed_total",
			Help: "Ops completed per tenant.", Type: obs.TypeCounter}
		dropped := obs.Metric{Name: "elisa_fleet_dropped_total",
			Help: "Ops dropped at the tenant's bounded queue.", Type: obs.TypeCounter}
		goodput := obs.Metric{Name: "elisa_fleet_goodput_ops",
			Help: "Completed ops per simulated second, per tenant.", Type: obs.TypeGauge}
		latency := obs.Metric{Name: "elisa_fleet_latency_ns",
			Help: "Op completion latency quantiles (queueing included).", Type: obs.TypeGauge}
		shed := obs.Metric{Name: "elisa_overload_shed_total",
			Help: "Arrivals refused before the ring, by reason (admission = token bucket, shed = load shedder, breaker = quarantine).", Type: obs.TypeCounter}
		quarantined := obs.Metric{Name: "elisa_overload_quarantined",
			Help: "1 while the tenant's circuit breaker holds it quarantined.", Type: obs.TypeGauge}
		rep := f.Snapshot()
		for _, tr := range rep.Tenants {
			labels := map[string]string{"tenant": tr.Name}
			submitted.Samples = append(submitted.Samples, obs.Sample{Labels: labels, Value: float64(tr.Submitted)})
			completed.Samples = append(completed.Samples, obs.Sample{Labels: labels, Value: float64(tr.Completed)})
			dropped.Samples = append(dropped.Samples, obs.Sample{Labels: labels, Value: float64(tr.Dropped)})
			goodput.Samples = append(goodput.Samples, obs.Sample{Labels: labels, Value: tr.GoodputOPS})
			latency.Samples = append(latency.Samples,
				obs.Sample{Labels: map[string]string{"tenant": tr.Name, "q": "p50"}, Value: float64(tr.P50)},
				obs.Sample{Labels: map[string]string{"tenant": tr.Name, "q": "p99"}, Value: float64(tr.P99)})
			shed.Samples = append(shed.Samples,
				obs.Sample{Labels: map[string]string{"tenant": tr.Name, "reason": "admission"}, Value: float64(tr.Throttled)},
				obs.Sample{Labels: map[string]string{"tenant": tr.Name, "reason": "shed"}, Value: float64(tr.Shed)},
				obs.Sample{Labels: map[string]string{"tenant": tr.Name, "reason": "breaker"}, Value: float64(tr.BreakerShed)})
			q := 0.0
			if tr.Quarantined {
				q = 1
			}
			quarantined.Samples = append(quarantined.Samples, obs.Sample{Labels: labels, Value: q})
		}
		return []obs.Metric{submitted, completed, dropped, goodput, latency, shed, quarantined,
			{Name: "elisa_fleet_tenants", Help: "Admitted tenants.", Type: obs.TypeGauge,
				Samples: []obs.Sample{{Value: float64(len(rep.Tenants))}}},
		}
	}
}
