package elisa

// End-to-end tests of the observability surface: the flight recorder
// must decompose calls into the paper's Table 2 phases, and switching it
// on must not move the simulated clock by a single nanosecond.

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/elisa-go/elisa/internal/obs"
)

const obsFnNop = 11
const obsFnCopy = 12
const obsFnFail = 13

// buildObservedWorkload boots a one-guest system, registers a no-op, an
// exchange-copying, and a failing manager function, and runs a fixed
// mixed workload. It returns the system, the guest, and the guest's
// total simulated time.
func buildObservedWorkload(t *testing.T, cfg Config) (*System, *GuestVM, Duration) {
	t.Helper()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mgr := sys.Manager()
	if err := mgr.RegisterFunc(obsFnNop, func(*CallContext) (uint64, error) { return 0, nil }); err != nil {
		t.Fatal(err)
	}
	if err := mgr.RegisterFunc(obsFnCopy, func(c *CallContext) (uint64, error) {
		return 128, c.CopyObjectToExchange(0, 0, 128)
	}); err != nil {
		t.Fatal(err)
	}
	if err := mgr.RegisterFunc(obsFnFail, func(*CallContext) (uint64, error) {
		return 0, errFnFail
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.CreateObject("obs-obj", 4*PageSize); err != nil {
		t.Fatal(err)
	}
	g, err := sys.NewGuestVM("obs-guest", 16*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	h, err := g.Attach("obs-obj")
	if err != nil {
		t.Fatal(err)
	}
	v := g.VCPU()
	for i := 0; i < 50; i++ {
		if _, err := h.Call(v, obsFnNop); err != nil {
			t.Fatal(err)
		}
		if _, err := h.Call(v, obsFnCopy); err != nil {
			t.Fatal(err)
		}
		if _, err := h.Call(v, obsFnFail); err == nil {
			t.Fatal("failing fn succeeded")
		}
		reqs := []Req{{Fn: obsFnNop}, {Fn: obsFnCopy}, {Fn: obsFnNop}}
		if err := h.CallMulti(v, reqs); err != nil {
			t.Fatal(err)
		}
	}
	return sys, g, g.Elapsed()
}

type obsFailErr struct{}

func (obsFailErr) Error() string { return "obs: injected failure" }

var errFnFail = obsFailErr{}

// The recorder reads clocks but never charges them: the same workload
// takes bit-identical simulated time with observation off, sampled, or
// recording every span. This is the "<5% overhead" acceptance bar met by
// construction — the overhead is exactly zero.
func TestObserveZeroSimulatedTimeOverhead(t *testing.T) {
	_, _, off := buildObservedWorkload(t, Config{})
	_, _, full := buildObservedWorkload(t, Config{Observe: &ObserveConfig{SampleEvery: 1}})
	_, _, sampled := buildObservedWorkload(t, Config{Observe: &ObserveConfig{SampleEvery: 64}})
	if off != full || off != sampled {
		t.Fatalf("observation moved the simulated clock: off=%d full=%d sampled=%d",
			off, full, sampled)
	}
}

// A warm no-op call's span must decompose exactly into the architectural
// round trip of Table 2: the phases sum to ELISARoundTrip (196 ns), the
// exchange phase is zero, and every crossing phase is positive.
func TestSpanPhasesMatchTable2(t *testing.T) {
	sys, err := NewSystem(Config{Observe: &ObserveConfig{SampleEvery: 1}})
	if err != nil {
		t.Fatal(err)
	}
	mgr := sys.Manager()
	if err := mgr.RegisterFunc(obsFnNop, func(*CallContext) (uint64, error) { return 0, nil }); err != nil {
		t.Fatal(err)
	}
	if err := mgr.RegisterFunc(obsFnCopy, func(c *CallContext) (uint64, error) {
		return 128, c.CopyObjectToExchange(0, 0, 128)
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.CreateObject("obs-obj", 4*PageSize); err != nil {
		t.Fatal(err)
	}
	g, err := sys.NewGuestVM("obs-guest", 16*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	h, err := g.Attach("obs-obj")
	if err != nil {
		t.Fatal(err)
	}
	v := g.VCPU()
	if _, err := h.Call(v, obsFnNop); err != nil { // cold: TLB fills
		t.Fatal(err)
	}

	before := v.Clock().Now()
	if _, err := h.Call(v, obsFnNop); err != nil {
		t.Fatal(err)
	}
	wall := v.Clock().Elapsed(before)

	spans := sys.Spans()
	warm := spans[len(spans)-1]
	if warm.Total() != wall {
		t.Fatalf("span total %d != clock delta %d", warm.Total(), wall)
	}
	if want := DefaultCostModel().ELISARoundTrip(); warm.Total() != want {
		t.Fatalf("warm no-op span = %d ns, want ELISARoundTrip %d", warm.Total(), want)
	}
	if warm.Phases[obs.PhaseExchange] != 0 {
		t.Fatalf("no-op call charged exchange phase %d", warm.Phases[obs.PhaseExchange])
	}
	for _, ph := range []obs.Phase{obs.PhaseGateIn, obs.PhaseSubSwitch, obs.PhaseFunc, obs.PhaseReturn} {
		if warm.Phases[ph] <= 0 {
			t.Fatalf("phase %s = %d, want > 0", ph, warm.Phases[ph])
		}
	}
	if warm.Guest != "obs-guest" || warm.Object != "obs-obj" || warm.Fn != obsFnNop || warm.Batch != 1 || warm.Err {
		t.Fatalf("span identity wrong: %s", warm)
	}

	// A copying call attributes its memcpy to the exchange phase and is
	// exactly the no-op round trip plus the copy time.
	if _, err := h.Call(v, obsFnCopy); err != nil {
		t.Fatal(err)
	}
	spans = sys.Spans()
	cp := spans[len(spans)-1]
	if cp.Phases[obs.PhaseExchange] <= 0 {
		t.Fatal("copying call recorded no exchange time")
	}
	if got, want := cp.Total()-cp.Phases[obs.PhaseExchange], warm.Total(); got != want {
		t.Fatalf("copy span minus exchange = %d, want bare round trip %d", got, want)
	}
}

// CallMulti produces one ring span covering the batch plus a per-request
// latency sample per op — and the batch span must stay out of the
// histograms, which would otherwise double-count.
func TestCallMultiBatchObservation(t *testing.T) {
	sys, err := NewSystem(Config{Observe: &ObserveConfig{SampleEvery: 1}})
	if err != nil {
		t.Fatal(err)
	}
	mgr := sys.Manager()
	if err := mgr.RegisterFunc(obsFnNop, func(*CallContext) (uint64, error) { return 0, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.CreateObject("obs-obj", PageSize); err != nil {
		t.Fatal(err)
	}
	g, err := sys.NewGuestVM("obs-guest", 16*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	h, err := g.Attach("obs-obj")
	if err != nil {
		t.Fatal(err)
	}
	v := g.VCPU()

	key := obs.Key{Guest: "obs-guest", Object: "obs-obj", Fn: obsFnNop}
	rec := sys.Recorder()
	seen := rec.SpansSeen()
	count := rec.Histogram(key).Count()

	reqs := make([]Req, 4)
	for i := range reqs {
		reqs[i].Fn = obsFnNop
	}
	if err := h.CallMulti(v, reqs); err != nil {
		t.Fatal(err)
	}
	if got := rec.SpansSeen() - seen; got != 1 {
		t.Fatalf("batch produced %d spans, want 1", got)
	}
	if got := rec.Histogram(key).Count() - count; got != 4 {
		t.Fatalf("batch added %d histogram samples, want 4 (one per request)", got)
	}
	spans := sys.Spans()
	batch := spans[len(spans)-1]
	if batch.Batch != 4 {
		t.Fatalf("batch span Batch = %d, want 4", batch.Batch)
	}
	// The amortisation the batch exists for: its whole-batch total is far
	// below four single calls.
	if single := 4 * DefaultCostModel().ELISARoundTrip(); batch.Total() >= single {
		t.Fatalf("batch total %d not amortised below %d", batch.Total(), single)
	}
}

// Function errors and gate refusals both surface as Err-flagged spans.
func TestErrorCallsFlaggedInSpans(t *testing.T) {
	sys, g, _ := buildObservedWorkload(t, Config{Observe: &ObserveConfig{SampleEvery: 1}})
	var nerr int
	for _, sp := range sys.Spans() {
		if sp.Err {
			nerr++
			if sp.Fn != obsFnFail {
				t.Fatalf("unexpected error span: %s", sp)
			}
		}
	}
	if nerr == 0 {
		t.Fatal("failing calls produced no Err spans")
	}

	// After detach the gate refuses the stale handle's slot; the refusal
	// is recorded as an error span for the attempted fn.
	h, err := g.Attach("obs-obj")
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Detach("obs-obj"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Call(g.VCPU(), obsFnNop); err == nil {
		t.Fatal("detached handle still callable")
	}
	spans := sys.Spans()
	last := spans[len(spans)-1]
	if !last.Err || last.Fn != obsFnNop {
		t.Fatalf("gate refusal not recorded as error span: %s", last)
	}
}

// The metrics registry exports the live machine in both formats, with
// the recorder's latency summaries included.
func TestMetricsExportEndToEnd(t *testing.T) {
	sys, _, _ := buildObservedWorkload(t, Config{TraceEvents: 256, Observe: &ObserveConfig{}})

	text := sys.Metrics().Prometheus()
	for _, want := range []string{
		"# TYPE elisa_vcpu_vmfuncs_total counter",
		"# TYPE elisa_call_latency_ns summary",
		`elisa_attachment_calls_total{guest="obs-guest",object="obs-obj",slot=`,
		`elisa_call_latency_ns{fn="11",guest="obs-guest",object="obs-obj",quantile="0.99"}`,
		"elisa_call_latency_ns_count{",
		"elisa_spans_total{disposition=\"seen\"}",
		"elisa_vms 2",
		"elisa_attachments 1",
		"elisa_trace_events_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("Prometheus export missing %q:\n%s", want, text)
		}
	}

	raw, err := sys.Metrics().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var metrics []struct {
		Name    string `json:"name"`
		Type    string `json:"type"`
		Samples []struct {
			Value float64 `json:"value"`
		} `json:"samples"`
	}
	if err := json.Unmarshal(raw, &metrics); err != nil {
		t.Fatalf("JSON export invalid: %v", err)
	}
	names := map[string]bool{}
	for _, m := range metrics {
		names[m.Name] = true
	}
	for _, want := range []string{"elisa_vcpu_vmfuncs_total", "elisa_call_latency_ns", "elisa_attachment_calls_total"} {
		if !names[want] {
			t.Fatalf("JSON export missing %q (has %v)", want, names)
		}
	}
}
