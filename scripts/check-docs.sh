#!/usr/bin/env bash
# The documentation gate, runnable locally and from CI (docs job in
# .github/workflows/ci.yml):
#
#   1. gofmt -l must be empty (doc comments are code too);
#   2. go vet must pass;
#   3. elisa-doclint must pass: package + exported-symbol doc comments,
#      markdown relative links resolve, and COSTMODEL.md's constant
#      tables match internal/simtime/cost.go (no latency drift);
#   4. every cmd/* and examples/* path the README references must build.
#
# Run from the repository root: ./scripts/check-docs.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:"
    echo "$unformatted"
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== elisa-doclint"
go run ./cmd/elisa-doclint

echo "== README-referenced binaries build"
refs=$(grep -oE '(\./)?(cmd|examples)/[a-z-]+' README.md | sed 's|^\./||' | sort -u)
if [ -z "$refs" ]; then
    echo "README references no cmd/* or examples/* paths — drift?" >&2
    exit 1
fi
for ref in $refs; do
    if [ ! -d "$ref" ]; then
        echo "README references $ref, which does not exist" >&2
        exit 1
    fi
    echo "   go build ./$ref"
    go build -o /dev/null "./$ref"
done

echo "docs gate: OK"
